//! Votes and strong-votes.
//!
//! A [`VoteData`] names the block being voted for *and its parent* — the
//! parent round is what drives DiemBFT's 2-chain locking rule (Fig 2/3). A
//! [`StrongVote`] is the paper's §3.2 extension: the vote plus an
//! [`EndorseInfo`] summarizing the voter's conflicting-fork history (a
//! single `marker`, or the generalized interval set of §3.4). The signature
//! covers both, so Byzantine replicas cannot reuse an honest vote with a
//! doctored marker.

use std::fmt;

use sft_crypto::{HashValue, Hasher, KeyPair, KeyRegistry, Signature};

use crate::codec::{Decode, DecodeError, Encode};
use crate::{ReplicaId, Round, RoundIntervalSet};

/// The content a vote certifies: the proposed block and its parent link.
///
/// # Examples
///
/// ```
/// use sft_crypto::HashValue;
/// use sft_types::{Round, VoteData};
///
/// let vd = VoteData::new(HashValue::of(b"B5"), Round::new(5), HashValue::of(b"B4"), Round::new(4));
/// assert_eq!(vd.block_round(), Round::new(5));
/// assert_eq!(vd.parent_round(), Round::new(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VoteData {
    block_id: HashValue,
    block_round: Round,
    parent_id: HashValue,
    parent_round: Round,
}

impl VoteData {
    /// Creates vote data for a block and its parent link.
    pub fn new(
        block_id: HashValue,
        block_round: Round,
        parent_id: HashValue,
        parent_round: Round,
    ) -> Self {
        Self {
            block_id,
            block_round,
            parent_id,
            parent_round,
        }
    }

    /// Id of the voted block.
    pub fn block_id(&self) -> HashValue {
        self.block_id
    }

    /// Round of the voted block.
    pub fn block_round(&self) -> Round {
        self.block_round
    }

    /// Id of the voted block's parent.
    pub fn parent_id(&self) -> HashValue {
        self.parent_id
    }

    /// Round of the voted block's parent — the round the receiver locks on
    /// when a QC over this vote data arrives (locking rule, Fig 2).
    pub fn parent_round(&self) -> Round {
        self.parent_round
    }

    /// Digest of the vote data.
    pub fn digest(&self) -> HashValue {
        Hasher::new("vote-data")
            .field(self.block_id.as_ref())
            .field(&self.block_round.as_u64().to_be_bytes())
            .field(self.parent_id.as_ref())
            .field(&self.parent_round.as_u64().to_be_bytes())
            .finish()
    }
}

impl fmt::Debug for VoteData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VoteData({} r={} <- {} r={})",
            self.block_id.short(),
            self.block_round,
            self.parent_id.short(),
            self.parent_round
        )
    }
}

impl Encode for VoteData {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.block_id.encode(buf);
        self.block_round.encode(buf);
        self.parent_id.encode(buf);
        self.parent_round.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        32 + 8 + 32 + 8
    }
}

impl Decode for VoteData {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            block_id: HashValue::decode(buf)?,
            block_round: Round::decode(buf)?,
            parent_id: HashValue::decode(buf)?,
            parent_round: Round::decode(buf)?,
        })
    }
}

/// Which endorsement information honest voters attach to their votes.
///
/// This is a *configuration* knob (per deployment, not per vote): it decides
/// which [`EndorseInfo`] variant an honest replica computes when it votes.
/// Byzantine replicas can of course attach whatever they like — the commit
/// rules only ever credit what a vote's signature actually covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum EndorseMode {
    /// Vanilla votes ([`EndorseInfo::None`]): the unmodified-baseline
    /// configuration of the paper's evaluation (§4). Votes endorse only the
    /// block they name, so ancestors are never strengthened by descendants.
    Vanilla,
    /// §3.2 strong-votes carrying the conflicting-round marker: each vote
    /// also endorses every ancestor newer than the voter's last conflicting
    /// vote. This is the paper's "one integer of overhead" configuration.
    #[default]
    Marker,
    /// §3.4 generalized strong-votes carrying the explicit interval set
    /// `I`: per conflicting fork `F`, only the window `D_F` back to the
    /// fork point is excluded, recovering endorsements the single marker
    /// over-approximates away.
    Interval,
}

/// The endorsement summary attached to a strong-vote.
///
/// Decides which *ancestors* of the voted block this vote endorses (the
/// voted block itself is always endorsed — a direct vote). Variants trade
/// wire size for strong-commit liveness (§3.4):
///
/// - [`EndorseInfo::None`] — vanilla DiemBFT vote; endorses only the voted
///   block. Used by the unmodified-baseline configuration in the throughput
///   comparison (§4).
/// - [`EndorseInfo::Marker`] — §3.2: one round number, the highest round of
///   any conflicting block the voter ever voted for. Endorses ancestors with
///   round `> marker`.
/// - [`EndorseInfo::Intervals`] — §3.4: an explicit set `I` of endorsed
///   rounds, excluding each conflicting fork's `D_F` window only.
///
/// # Examples
///
/// ```
/// use sft_types::{EndorseInfo, Round, RoundIntervalSet};
///
/// let marker = EndorseInfo::Marker(Round::new(3));
/// assert!(marker.endorses_ancestor_round(Round::new(4)));
/// assert!(!marker.endorses_ancestor_round(Round::new(3)));
///
/// let ivs = EndorseInfo::Intervals(RoundIntervalSet::from_marker(Round::new(3), Round::new(9)));
/// assert!(ivs.endorses_ancestor_round(Round::new(9)));
/// assert!(!ivs.endorses_ancestor_round(Round::new(2)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum EndorseInfo {
    /// No endorsement information (vanilla DiemBFT vote).
    None,
    /// §3.2 marker: largest conflicting voted round.
    Marker(Round),
    /// §3.4 generalized interval set `I`.
    Intervals(RoundIntervalSet),
}

impl EndorseInfo {
    /// True if a strong-vote with this info endorses an ancestor block of
    /// the voted block at `round`.
    ///
    /// Per §3.2 a strong-vote with marker `m` for a block extending `B`
    /// endorses `B` iff `B.round > m`; per §3.4 iff `B.round ∈ I`. The
    /// caller is responsible for the "extends" check — this only evaluates
    /// the round predicate.
    pub fn endorses_ancestor_round(&self, round: Round) -> bool {
        match self {
            EndorseInfo::None => false,
            EndorseInfo::Marker(marker) => round > *marker,
            EndorseInfo::Intervals(set) => set.contains(round),
        }
    }

    /// A lower bound below which no ancestor round can be endorsed — lets
    /// the endorsement tracker cut off its ancestor walk early.
    pub fn min_endorsed_round(&self) -> Option<Round> {
        match self {
            EndorseInfo::None => None,
            EndorseInfo::Marker(marker) => Some(marker.next()),
            EndorseInfo::Intervals(set) => set.min(),
        }
    }

    /// The wire overhead of this info in bytes — the quantity §3.2 calls
    /// "marginal bookkeeping overhead" (one integer for the marker case).
    pub fn overhead_bytes(&self) -> usize {
        self.encoded_len() - 1
    }
}

impl fmt::Debug for EndorseInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EndorseInfo::None => write!(f, "EndorseInfo::None"),
            EndorseInfo::Marker(m) => write!(f, "EndorseInfo::Marker({m})"),
            EndorseInfo::Intervals(set) => write!(f, "EndorseInfo::Intervals({set:?})"),
        }
    }
}

impl Encode for EndorseInfo {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            EndorseInfo::None => buf.push(0),
            EndorseInfo::Marker(m) => {
                buf.push(1);
                m.encode(buf);
            }
            EndorseInfo::Intervals(set) => {
                buf.push(2);
                set.encode(buf);
            }
        }
    }
}

impl Decode for EndorseInfo {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(EndorseInfo::None),
            1 => Ok(EndorseInfo::Marker(Round::decode(buf)?)),
            2 => Ok(EndorseInfo::Intervals(RoundIntervalSet::decode(buf)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// Signing preimage for a (strong-)vote: binds the vote data and the
/// endorsement info under one signature.
pub fn vote_signing_digest(data: &VoteData, endorse: &EndorseInfo) -> HashValue {
    vote_signing_digest_with(data.digest(), endorse)
}

/// [`vote_signing_digest`] with the vote-data digest already in hand.
/// Every vote of a forming quorum certifies the *same* [`VoteData`], so
/// a batch verifier hashes the data once and reuses it across all
/// `2f + 1` preimages — the shared-precomputation half of the batched
/// verification path.
pub fn vote_signing_digest_with(data_digest: HashValue, endorse: &EndorseInfo) -> HashValue {
    Hasher::new("strong-vote")
        .field(data_digest.as_ref())
        .field(&endorse.to_bytes())
        .finish()
}

/// A signed (strong-)vote message: `⟨vote, B, r, marker⟩_i` in the paper's
/// notation (Fig 4), sent to the next round's leader.
///
/// # Examples
///
/// ```
/// use sft_crypto::{HashValue, KeyRegistry};
/// use sft_types::{EndorseInfo, ReplicaId, Round, StrongVote, VoteData};
///
/// let registry = KeyRegistry::deterministic(4);
/// let kp = registry.key_pair(2).expect("replica 2");
/// let data = VoteData::new(HashValue::of(b"B"), Round::new(3), HashValue::of(b"A"), Round::new(2));
/// let vote = StrongVote::new(data, EndorseInfo::Marker(Round::ZERO), &kp);
/// assert_eq!(vote.author(), ReplicaId::new(2));
/// assert!(vote.verify(&registry));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct StrongVote {
    data: VoteData,
    endorse: EndorseInfo,
    author: ReplicaId,
    signature: Signature,
}

impl StrongVote {
    /// Creates and signs a vote.
    pub fn new(data: VoteData, endorse: EndorseInfo, key_pair: &KeyPair) -> Self {
        let digest = vote_signing_digest(&data, &endorse);
        let signature = key_pair.sign(digest.as_ref());
        Self {
            data,
            endorse,
            author: ReplicaId::new(key_pair.signer() as u16),
            signature,
        }
    }

    /// Reassembles a vote from parts (used by the decoder and by test
    /// harnesses forging Byzantine votes).
    pub fn from_parts(
        data: VoteData,
        endorse: EndorseInfo,
        author: ReplicaId,
        signature: Signature,
    ) -> Self {
        Self {
            data,
            endorse,
            author,
            signature,
        }
    }

    /// The vote data.
    pub fn data(&self) -> &VoteData {
        &self.data
    }

    /// The endorsement info.
    pub fn endorse(&self) -> &EndorseInfo {
        &self.endorse
    }

    /// The voting replica.
    pub fn author(&self) -> ReplicaId {
        self.author
    }

    /// The signature over (vote data, endorsement info).
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// Round of the voted block.
    pub fn round(&self) -> Round {
        self.data.block_round
    }

    /// Verifies the signature against the PKI.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        let digest = vote_signing_digest(&self.data, &self.endorse);
        registry.verify(self.author.as_u64(), digest.as_ref(), &self.signature)
    }
}

impl fmt::Debug for StrongVote {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StrongVote({} for {} r={} {:?})",
            self.author,
            self.data.block_id.short(),
            self.data.block_round,
            self.endorse
        )
    }
}

impl Encode for StrongVote {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.data.encode(buf);
        self.endorse.encode(buf);
        self.author.encode(buf);
        self.signature.encode(buf);
    }
}

impl Decode for StrongVote {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            data: VoteData::decode(buf)?,
            endorse: EndorseInfo::decode(buf)?,
            author: ReplicaId::decode(buf)?,
            signature: Signature::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_data() -> VoteData {
        VoteData::new(
            HashValue::of(b"B5"),
            Round::new(5),
            HashValue::of(b"B4"),
            Round::new(4),
        )
    }

    #[test]
    fn vote_data_digest_binds_fields() {
        let base = sample_data();
        let other = VoteData::new(
            HashValue::of(b"B5"),
            Round::new(6),
            HashValue::of(b"B4"),
            Round::new(4),
        );
        assert_ne!(base.digest(), other.digest());
        let other2 = VoteData::new(
            HashValue::of(b"B5"),
            Round::new(5),
            HashValue::of(b"X"),
            Round::new(4),
        );
        assert_ne!(base.digest(), other2.digest());
    }

    #[test]
    fn endorse_none_never_endorses() {
        let info = EndorseInfo::None;
        assert!(!info.endorses_ancestor_round(Round::new(1)));
        assert_eq!(info.min_endorsed_round(), None);
        assert_eq!(info.overhead_bytes(), 0);
    }

    #[test]
    fn endorse_marker_threshold() {
        let info = EndorseInfo::Marker(Round::new(5));
        assert!(!info.endorses_ancestor_round(Round::new(5)));
        assert!(info.endorses_ancestor_round(Round::new(6)));
        assert_eq!(info.min_endorsed_round(), Some(Round::new(6)));
        assert_eq!(
            info.overhead_bytes(),
            8,
            "one u64 — the paper's 'one integer' overhead"
        );
    }

    #[test]
    fn endorse_intervals_membership() {
        let mut set = RoundIntervalSet::full_range(Round::new(1), Round::new(10));
        set.subtract(Round::new(4), Round::new(6));
        let info = EndorseInfo::Intervals(set);
        assert!(info.endorses_ancestor_round(Round::new(3)));
        assert!(!info.endorses_ancestor_round(Round::new(5)));
        assert!(info.endorses_ancestor_round(Round::new(7)));
        assert_eq!(info.min_endorsed_round(), Some(Round::new(1)));
    }

    #[test]
    fn marker_and_equivalent_intervals_agree() {
        let marker = EndorseInfo::Marker(Round::new(3));
        let intervals = EndorseInfo::Intervals(RoundIntervalSet::from_marker(
            Round::new(3),
            Round::new(100),
        ));
        for round in 1..=100u64 {
            assert_eq!(
                marker.endorses_ancestor_round(Round::new(round)),
                intervals.endorses_ancestor_round(Round::new(round)),
                "round {round}"
            );
        }
    }

    #[test]
    fn sign_and_verify() {
        let registry = KeyRegistry::deterministic(4);
        let kp = registry.key_pair(1).unwrap();
        let vote = StrongVote::new(sample_data(), EndorseInfo::Marker(Round::new(2)), &kp);
        assert!(vote.verify(&registry));
        assert_eq!(vote.author(), ReplicaId::new(1));
        assert_eq!(vote.round(), Round::new(5));
    }

    #[test]
    fn tampered_marker_fails_verification() {
        // A Byzantine relay cannot lower an honest voter's marker: the
        // signature covers the endorsement info.
        let registry = KeyRegistry::deterministic(4);
        let kp = registry.key_pair(1).unwrap();
        let vote = StrongVote::new(sample_data(), EndorseInfo::Marker(Round::new(7)), &kp);
        let forged = StrongVote::from_parts(
            *vote.data(),
            EndorseInfo::Marker(Round::ZERO),
            vote.author(),
            *vote.signature(),
        );
        assert!(!forged.verify(&registry));
    }

    #[test]
    fn tampered_block_fails_verification() {
        let registry = KeyRegistry::deterministic(4);
        let kp = registry.key_pair(1).unwrap();
        let vote = StrongVote::new(sample_data(), EndorseInfo::None, &kp);
        let other = VoteData::new(
            HashValue::of(b"EVIL"),
            Round::new(5),
            HashValue::of(b"B4"),
            Round::new(4),
        );
        let forged =
            StrongVote::from_parts(other, EndorseInfo::None, vote.author(), *vote.signature());
        assert!(!forged.verify(&registry));
    }

    #[test]
    fn wrong_author_fails_verification() {
        let registry = KeyRegistry::deterministic(4);
        let kp = registry.key_pair(1).unwrap();
        let vote = StrongVote::new(sample_data(), EndorseInfo::None, &kp);
        let forged = StrongVote::from_parts(
            *vote.data(),
            EndorseInfo::None,
            ReplicaId::new(2),
            *vote.signature(),
        );
        assert!(!forged.verify(&registry));
    }

    #[test]
    fn codec_roundtrips() {
        let registry = KeyRegistry::deterministic(4);
        let kp = registry.key_pair(3).unwrap();
        for endorse in [
            EndorseInfo::None,
            EndorseInfo::Marker(Round::new(9)),
            EndorseInfo::Intervals(RoundIntervalSet::from_marker(Round::new(1), Round::new(5))),
        ] {
            let vote = StrongVote::new(sample_data(), endorse.clone(), &kp);
            let back = StrongVote::from_bytes(&vote.to_bytes()).unwrap();
            assert_eq!(back, vote);
            assert!(back.verify(&registry));
            let e = EndorseInfo::from_bytes(&endorse.to_bytes()).unwrap();
            assert_eq!(e, endorse);
        }
        let vd = sample_data();
        assert_eq!(VoteData::from_bytes(&vd.to_bytes()).unwrap(), vd);
    }

    #[test]
    fn endorse_bad_tag() {
        assert_eq!(
            EndorseInfo::from_bytes(&[9]),
            Err(DecodeError::InvalidTag(9))
        );
    }
}
