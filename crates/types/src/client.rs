//! The client plane: submission requests and strength-graded acks.
//!
//! The paper's contribution is a *graded* commit — every committed block
//! carries a strength level `x` (Definition 1) that keeps rising as more
//! endorsements arrive. This module productizes that grade as a client-facing
//! durability SLA: a [`ClientRequest`] names the strength the client wants
//! (`ack_at`), and the replica answers with a [`ClientAck::Committed`] only
//! once the containing block's strong-commit level has reached it. `ack_at:
//! 0` is answered at the standard commit (which already carries level `f`);
//! `ack_at: x` waits for the `x`-strong upgrade of §3.
//!
//! ## Framing
//!
//! Client frames ride the same length-prefixed [`crate::Envelope`] framing
//! as replica traffic, under [`crate::ProtocolTag::Client`]. The envelope
//! payload is an encoded [`ClientFrame`] — a tagged union so a reader can
//! refuse a request arriving where an ack belongs (and vice versa) instead
//! of misparsing it.

use std::fmt;

use sft_crypto::HashValue;

use crate::codec::{Decode, DecodeError, Encode};
use crate::{Round, Transaction};

/// A client's submission: the transaction plus the strength level the
/// client wants acknowledged.
///
/// # Examples
///
/// ```
/// use sft_types::{ClientRequest, Transaction};
///
/// let req = ClientRequest::new(Transaction::new(7, 0, b"pay".to_vec()), 2);
/// assert_eq!(req.ack_at, 2);
/// assert_eq!(req.txn_id(), req.txn.id());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientRequest {
    /// The transaction to replicate.
    pub txn: Transaction,
    /// Absolute strength level `x` to acknowledge at: the ack fires once
    /// the containing block is `≥ ack_at`-strong committed. `0` means "ack
    /// at standard commit" (which already carries level `f`).
    pub ack_at: u64,
}

impl ClientRequest {
    /// Creates a request.
    pub fn new(txn: Transaction, ack_at: u64) -> Self {
        Self { txn, ack_at }
    }

    /// The submitted transaction's id — the key every ack echoes back.
    pub fn txn_id(&self) -> HashValue {
        self.txn.id()
    }
}

impl Encode for ClientRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.txn.encode(buf);
        self.ack_at.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.txn.encoded_len() + 8
    }
}

impl Decode for ClientRequest {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Self {
            txn: Transaction::decode(buf)?,
            ack_at: u64::decode(buf)?,
        })
    }
}

/// A replica's answer to a [`ClientRequest`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClientAck {
    /// The transaction's block is committed at `strength`-strong (with
    /// `strength ≥` the requested `ack_at`).
    Committed {
        /// The acknowledged transaction.
        txn_id: HashValue,
        /// The round of the containing block.
        round: Round,
        /// The strong-commit level at ack time (Definition 1's `x`).
        strength: u64,
    },
    /// The mempool is at capacity — the transaction was NOT admitted;
    /// retry later (admission-control backpressure).
    Busy {
        /// The rejected transaction.
        txn_id: HashValue,
    },
    /// The transaction was already submitted (or already committed) —
    /// not admitted a second time.
    Duplicate {
        /// The duplicate transaction.
        txn_id: HashValue,
    },
}

impl ClientAck {
    /// The transaction this ack answers.
    pub fn txn_id(&self) -> HashValue {
        match self {
            ClientAck::Committed { txn_id, .. }
            | ClientAck::Busy { txn_id }
            | ClientAck::Duplicate { txn_id } => *txn_id,
        }
    }

    /// True for [`ClientAck::Committed`].
    pub fn is_committed(&self) -> bool {
        matches!(self, ClientAck::Committed { .. })
    }
}

impl fmt::Debug for ClientAck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientAck::Committed {
                txn_id,
                round,
                strength,
            } => write!(f, "Ack({} r={} {}-strong)", txn_id.short(), round, strength),
            ClientAck::Busy { txn_id } => write!(f, "Busy({})", txn_id.short()),
            ClientAck::Duplicate { txn_id } => write!(f, "Duplicate({})", txn_id.short()),
        }
    }
}

impl Encode for ClientAck {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ClientAck::Committed {
                txn_id,
                round,
                strength,
            } => {
                buf.push(0);
                txn_id.encode(buf);
                round.encode(buf);
                strength.encode(buf);
            }
            ClientAck::Busy { txn_id } => {
                buf.push(1);
                txn_id.encode(buf);
            }
            ClientAck::Duplicate { txn_id } => {
                buf.push(2);
                txn_id.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        match self {
            ClientAck::Committed { .. } => 1 + 32 + 8 + 8,
            ClientAck::Busy { .. } | ClientAck::Duplicate { .. } => 1 + 32,
        }
    }
}

impl Decode for ClientAck {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(ClientAck::Committed {
                txn_id: HashValue::decode(buf)?,
                round: Round::decode(buf)?,
                strength: u64::decode(buf)?,
            }),
            1 => Ok(ClientAck::Busy {
                txn_id: HashValue::decode(buf)?,
            }),
            2 => Ok(ClientAck::Duplicate {
                txn_id: HashValue::decode(buf)?,
            }),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

/// The tagged union a [`crate::ProtocolTag::Client`] envelope carries.
///
/// Clients send [`ClientFrame::Request`]s; replicas send
/// [`ClientFrame::Ack`]s. The tag lets each side *refuse* a frame flowing
/// the wrong way instead of misparsing it.
///
/// # Examples
///
/// ```
/// use sft_types::{ClientAck, ClientFrame, Round};
/// use sft_crypto::HashValue;
///
/// let ack = ClientFrame::Ack(ClientAck::Committed {
///     txn_id: HashValue::of(b"t"),
///     round: Round::new(3),
///     strength: 2,
/// });
/// assert!(ack.as_ack().is_some());
/// assert!(ack.as_request().is_none());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientFrame {
    /// Client → replica: submit a transaction.
    Request(ClientRequest),
    /// Replica → client: answer a submission.
    Ack(ClientAck),
}

impl ClientFrame {
    /// The request, if this frame is one.
    pub fn as_request(&self) -> Option<&ClientRequest> {
        match self {
            ClientFrame::Request(req) => Some(req),
            ClientFrame::Ack(_) => None,
        }
    }

    /// The ack, if this frame is one.
    pub fn as_ack(&self) -> Option<&ClientAck> {
        match self {
            ClientFrame::Ack(ack) => Some(ack),
            ClientFrame::Request(_) => None,
        }
    }
}

impl Encode for ClientFrame {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            ClientFrame::Request(req) => {
                buf.push(0);
                req.encode(buf);
            }
            ClientFrame::Ack(ack) => {
                buf.push(1);
                ack.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + match self {
            ClientFrame::Request(req) => req.encoded_len(),
            ClientFrame::Ack(ack) => ack.encoded_len(),
        }
    }
}

impl Decode for ClientFrame {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(ClientFrame::Request(ClientRequest::decode(buf)?)),
            1 => Ok(ClientFrame::Ack(ClientAck::decode(buf)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> ClientRequest {
        ClientRequest::new(Transaction::new(3, 9, vec![0xaa; 16]), 2)
    }

    fn committed() -> ClientAck {
        ClientAck::Committed {
            txn_id: HashValue::of(b"txn"),
            round: Round::new(12),
            strength: 2,
        }
    }

    #[test]
    fn request_roundtrips() {
        let req = request();
        let bytes = req.to_bytes();
        assert_eq!(bytes.len(), req.encoded_len());
        assert_eq!(ClientRequest::from_bytes(&bytes).unwrap(), req);
    }

    #[test]
    fn ack_variants_roundtrip() {
        for ack in [
            committed(),
            ClientAck::Busy {
                txn_id: HashValue::of(b"b"),
            },
            ClientAck::Duplicate {
                txn_id: HashValue::of(b"d"),
            },
        ] {
            let bytes = ack.to_bytes();
            assert_eq!(bytes.len(), ack.encoded_len());
            assert_eq!(ClientAck::from_bytes(&bytes).unwrap(), ack);
        }
    }

    #[test]
    fn ack_txn_id_matches_every_variant() {
        let id = HashValue::of(b"x");
        for ack in [
            ClientAck::Committed {
                txn_id: id,
                round: Round::new(1),
                strength: 0,
            },
            ClientAck::Busy { txn_id: id },
            ClientAck::Duplicate { txn_id: id },
        ] {
            assert_eq!(ack.txn_id(), id);
        }
        assert!(committed().is_committed());
        assert!(!ClientAck::Busy { txn_id: id }.is_committed());
    }

    #[test]
    fn frame_roundtrips_both_directions() {
        for frame in [
            ClientFrame::Request(request()),
            ClientFrame::Ack(committed()),
        ] {
            let bytes = frame.to_bytes();
            assert_eq!(bytes.len(), frame.encoded_len());
            assert_eq!(ClientFrame::from_bytes(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn frame_direction_accessors() {
        let req = ClientFrame::Request(request());
        assert!(req.as_request().is_some());
        assert!(req.as_ack().is_none());
        let ack = ClientFrame::Ack(committed());
        assert!(ack.as_ack().is_some());
        assert!(ack.as_request().is_none());
    }

    #[test]
    fn bad_tags_rejected() {
        assert_eq!(ClientAck::from_bytes(&[9]), Err(DecodeError::InvalidTag(9)));
        assert_eq!(
            ClientFrame::from_bytes(&[7]),
            Err(DecodeError::InvalidTag(7))
        );
    }

    #[test]
    fn debug_forms() {
        assert!(format!("{:?}", committed()).contains("2-strong"));
        assert!(format!(
            "{:?}",
            ClientAck::Busy {
                txn_id: HashValue::of(b"b")
            }
        )
        .starts_with("Busy("));
    }
}
