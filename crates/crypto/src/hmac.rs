//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1), the MAC underlying our simulated
//! signature scheme.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the SHA-256 block size are hashed first, per RFC 2104.
///
/// # Examples
///
/// ```
/// use sft_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"message");
/// assert_eq!(tag.len(), 32);
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let digest = Sha256::digest(key);
        key_block[..DIGEST_LEN].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0x36u8; BLOCK_LEN];
    let mut opad = [0x5cu8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time equality for MAC tags.
///
/// Not strictly needed inside a simulator, but cheap insurance against the
/// comparison being compiled into an early-exit loop if this crate is reused.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 (key longer than block size).
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn ct_eq_behaves() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }
}
