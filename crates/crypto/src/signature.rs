//! The [`Signature`] type carried in votes, proposals and timeout messages.

use std::fmt;

/// Length of a signature tag in bytes.
pub const SIGNATURE_LEN: usize = 32;

/// An authenticator over (signer, message) produced by
/// [`KeyPair::sign`](crate::KeyPair::sign) and checked by
/// [`KeyRegistry::verify`](crate::KeyRegistry::verify).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    signer: u64,
    tag: [u8; SIGNATURE_LEN],
}

impl Signature {
    /// Wraps a raw MAC tag. Library-internal constructor; external users
    /// obtain signatures from [`KeyPair::sign`](crate::KeyPair::sign).
    pub fn from_tag(signer: u64, tag: [u8; SIGNATURE_LEN]) -> Self {
        Self { signer, tag }
    }

    /// The claimed signer index.
    pub fn signer(&self) -> u64 {
        self.signer
    }

    /// The raw tag bytes.
    pub fn tag(&self) -> &[u8; SIGNATURE_LEN] {
        &self.tag
    }

    /// A structurally valid but never-verifying signature, for tests and for
    /// genesis artifacts that are trusted by construction.
    pub fn dummy(signer: u64) -> Self {
        Self {
            signer,
            tag: [0u8; SIGNATURE_LEN],
        }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix: String = self.tag[..4].iter().map(|b| format!("{b:02x}")).collect();
        write!(f, "Signature(signer={}, {})", self.signer, prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_never_empty() {
        let s = Signature::dummy(3);
        let dbg = format!("{s:?}");
        assert!(dbg.contains("signer=3"));
    }

    #[test]
    fn accessors() {
        let s = Signature::from_tag(9, [7u8; 32]);
        assert_eq!(s.signer(), 9);
        assert_eq!(s.tag(), &[7u8; 32]);
    }
}
