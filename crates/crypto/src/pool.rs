//! Parallel batch verification on a lazily-spawned worker pool.
//!
//! [`KeyRegistry::verify_batch`] is one serial pass: at n = 61 a forming
//! quorum certificate folds 40+ HMAC computations on the engine thread.
//! [`KeyRegistry::verify_batch_pooled`] shards that MAC work across a
//! small process-wide pool of `std` threads (zero dependencies) and
//! joins the per-shard XOR folds into the *same* single constant-time
//! aggregate check — the accept path, the bisection reject path, and
//! every returned index are byte-identical to the serial pass, because
//! each item's contribution `Sha256(i ‖ computed) ⊕ Sha256(i ‖ claimed)`
//! depends only on the item and its original batch index, never on
//! which thread computed it.
//!
//! Small batches skip the pool entirely ([`PARALLEL_THRESHOLD`]):
//! sharding three MACs costs more in handoff than it saves. The pool
//! itself spawns on first use and lives for the process — callers on
//! the hot path never pay thread-spawn latency, and the thread count is
//! bounded ([`pool_workers`]) so harness thread budgets can account for
//! it.

use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};

use crate::batch::{bisect, fold, side, BatchItem};
use crate::hmac::ct_eq;
use crate::keys::KeyRegistry;
use crate::signature::SIGNATURE_LEN;

/// Batches below this size verify serially: the per-item MAC is ~1 µs,
/// so the cross-thread handoff only pays for itself once a quorum-sized
/// batch is on the table.
pub const PARALLEL_THRESHOLD: usize = 16;

/// Hard cap on pool workers — quorum batches are at most `n` items, and
/// past a few shards the join overhead eats the win.
const MAX_WORKERS: usize = 4;

/// One unit of pool work.
type Job = Box<dyn FnOnce() + Send>;

/// The process-wide verification pool: a job channel feeding detached
/// worker threads. Spawned lazily by the first over-threshold batch.
struct Pool {
    tx: Mutex<Sender<Job>>,
    workers: usize,
}

impl Pool {
    fn spawn() -> Self {
        let workers = available_workers();
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            std::thread::Builder::new()
                .name(format!("sft-crypto-pool-{i}"))
                .spawn(move || worker_loop(&rx))
                .expect("spawn crypto pool worker");
        }
        Self {
            tx: Mutex::new(tx),
            workers,
        }
    }

    fn submit(&self, job: Job) {
        self.tx
            .lock()
            .expect("crypto pool sender")
            .send(job)
            .expect("crypto pool workers alive for the process lifetime");
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = rx.lock().expect("crypto pool receiver");
            guard.recv()
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // channel closed: process is tearing down
        }
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(Pool::spawn)
}

fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_WORKERS)
}

/// How many threads the crypto pool runs (or would run) — what a
/// harness thread budget must reserve. The pool is spawned lazily, so
/// this is an upper bound until the first over-threshold batch.
#[must_use]
pub fn pool_workers() -> usize {
    POOL.get().map_or_else(available_workers, |p| p.workers)
}

/// One well-formed item, copied out of the borrowed batch so a pool job
/// can own it: original batch index, claimed signer, signed message,
/// claimed tag.
struct OwnedItem {
    index: usize,
    signer: u64,
    message: Vec<u8>,
    tag: [u8; SIGNATURE_LEN],
}

/// Computes the fold contributions for one shard, in shard order.
fn shard_contributions(registry: &KeyRegistry, shard: &[OwnedItem]) -> Vec<[u8; 32]> {
    let mut out = Vec::with_capacity(shard.len());
    let mut framed = Vec::new();
    for item in shard {
        let secret = registry
            .secret(item.signer)
            .expect("shard items are pre-checked against the registry");
        framed.clear();
        framed.extend_from_slice(&item.signer.to_be_bytes());
        framed.extend_from_slice(&item.message);
        let computed = secret.mac(&framed);
        let mut contribution = side(item.index, &computed);
        fold(&mut contribution, &side(item.index, &item.tag));
        out.push(contribution);
    }
    out
}

impl KeyRegistry {
    /// [`verify_batch`](Self::verify_batch) with the MAC work sharded
    /// across the process-wide worker pool. Result-identical to the
    /// serial pass — same `Ok`/`Err`, same forged indices — and falls
    /// back to it outright below [`PARALLEL_THRESHOLD`].
    ///
    /// # Errors
    ///
    /// Returns the sorted indices (into `items`) of every signature
    /// that does not verify.
    pub fn verify_batch_pooled(&self, items: &[BatchItem<'_>]) -> Result<(), Vec<usize>> {
        if items.len() < PARALLEL_THRESHOLD {
            return self.verify_batch(items);
        }

        // Malformed claims (mismatched or unregistered signer) are
        // forged by inspection, exactly as in the serial pass; only
        // well-formed items carry MAC work into the shards.
        let mut forged = Vec::new();
        let mut owned: Vec<OwnedItem> = Vec::with_capacity(items.len());
        for (index, item) in items.iter().enumerate() {
            if item.signature.signer() != item.signer || self.secret(item.signer).is_none() {
                forged.push(index);
                continue;
            }
            owned.push(OwnedItem {
                index,
                signer: item.signer,
                message: item.message.to_vec(),
                tag: *item.signature.tag(),
            });
        }

        let pool = pool();
        let shards = (pool.workers + 1).min(owned.len().max(1));
        let chunk = owned.len().div_ceil(shards);
        let mut pending: Vec<Vec<OwnedItem>> = Vec::with_capacity(shards);
        let mut rest = owned;
        while rest.len() > chunk {
            let tail = rest.split_off(chunk);
            pending.push(std::mem::replace(&mut rest, tail));
        }
        pending.push(rest);

        // Shard 0 runs on the calling thread (no handoff for the first
        // chunk, and correctness never depends on pool progress); the
        // rest go to the workers, results keyed by shard position.
        let (result_tx, result_rx) = mpsc::channel::<(usize, Vec<[u8; 32]>)>();
        let mut local = Vec::new();
        for (shard_idx, shard) in pending.iter().enumerate().skip(1) {
            let registry = self.clone();
            let shard: Vec<OwnedItem> = shard
                .iter()
                .map(|i| OwnedItem {
                    index: i.index,
                    signer: i.signer,
                    message: i.message.clone(),
                    tag: i.tag,
                })
                .collect();
            let tx = result_tx.clone();
            pool.submit(Box::new(move || {
                let _ = tx.send((shard_idx, shard_contributions(&registry, &shard)));
            }));
        }
        if let Some(first) = pending.first() {
            local = shard_contributions(self, first);
        }
        drop(result_tx);

        // Reassemble contributions in original index order: shards are
        // contiguous index ranges, so concatenating them by shard
        // position restores the serial pass's ordering exactly.
        let mut gathered: Vec<(usize, Vec<[u8; 32]>)> = result_rx.iter().collect();
        gathered.sort_unstable_by_key(|(shard_idx, _)| *shard_idx);
        let mut contributions: Vec<[u8; 32]> = local;
        for (_, mut shard) in gathered {
            contributions.append(&mut shard);
        }
        let map: Vec<usize> = pending.iter().flatten().map(|i| i.index).collect();
        debug_assert_eq!(contributions.len(), map.len());

        let mut acc = [0u8; 32];
        for contribution in &contributions {
            fold(&mut acc, contribution);
        }
        if forged.is_empty() && ct_eq(&acc, &[0u8; 32]) {
            return Ok(());
        }
        if !ct_eq(&acc, &[0u8; 32]) {
            bisect(&contributions, &map, 0..contributions.len(), &mut forged);
        }
        forged.sort_unstable();
        Err(forged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::Signature;

    fn signed(registry: &KeyRegistry, signer: u64, message: &[u8]) -> Signature {
        registry.key_pair(signer).unwrap().sign(message)
    }

    #[test]
    fn pooled_accepts_a_large_valid_batch() {
        let reg = KeyRegistry::deterministic(61);
        let msgs: Vec<Vec<u8>> = (0..61u64)
            .map(|i| format!("msg-{i}").into_bytes())
            .collect();
        let sigs: Vec<Signature> = (0..61u64)
            .map(|i| signed(&reg, i, &msgs[i as usize]))
            .collect();
        let items: Vec<BatchItem> = (0..61usize)
            .map(|i| BatchItem::new(i as u64, &msgs[i], &sigs[i]))
            .collect();
        assert_eq!(reg.verify_batch_pooled(&items), Ok(()));
    }

    #[test]
    fn pooled_matches_serial_on_forgeries() {
        let reg = KeyRegistry::deterministic(41);
        let msg = b"round-9";
        let mut sigs: Vec<Signature> = (0..41u64).map(|i| signed(&reg, i, msg)).collect();
        for &victim in &[0usize, 17, 23, 40] {
            let mut tag = *sigs[victim].tag();
            tag[victim % SIGNATURE_LEN] ^= 0x80;
            sigs[victim] = Signature::from_tag(victim as u64, tag);
        }
        let items: Vec<BatchItem> = sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| BatchItem::new(i as u64, msg, sig))
            .collect();
        assert_eq!(reg.verify_batch_pooled(&items), reg.verify_batch(&items));
        assert_eq!(reg.verify_batch_pooled(&items), Err(vec![0, 17, 23, 40]));
    }

    #[test]
    fn pooled_matches_serial_with_malformed_claims_interleaved() {
        let reg = KeyRegistry::deterministic(32);
        let msg = b"mixed";
        let sigs: Vec<Signature> = (0..32u64).map(|i| signed(&reg, i, msg)).collect();
        let ghost =
            crate::keys::KeyPair::new(99, crate::keys::SecretKey::deterministic(99)).sign(msg);
        let mut items: Vec<BatchItem> = sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| BatchItem::new(i as u64, msg, sig))
            .collect();
        items[5] = BatchItem::new(6, msg, &sigs[5]); // signer mismatch
        items[20] = BatchItem::new(99, msg, &ghost); // unregistered signer
        assert_eq!(reg.verify_batch_pooled(&items), reg.verify_batch(&items));
    }

    #[test]
    fn small_batches_stay_serial() {
        let reg = KeyRegistry::deterministic(4);
        let msg = b"small";
        let sigs: Vec<Signature> = (0..4u64).map(|i| signed(&reg, i, msg)).collect();
        let items: Vec<BatchItem> = sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| BatchItem::new(i as u64, msg, sig))
            .collect();
        assert_eq!(reg.verify_batch_pooled(&items), Ok(()));
        // Below threshold nothing forced the pool into existence from
        // this call; either way the worker bound holds.
        assert!(pool_workers() >= 1 && pool_workers() <= MAX_WORKERS);
    }

    #[test]
    fn pooled_equals_serial_across_random_corruption_patterns() {
        let reg = KeyRegistry::deterministic(31);
        let msg = b"equivalence";
        let mut rng = crate::rng::SplitMix64::new(0xC0FFEE);
        for _ in 0..8 {
            let mut sigs: Vec<Signature> = (0..31u64).map(|i| signed(&reg, i, msg)).collect();
            for victim in 0..31usize {
                if crate::rng::RngCore::next_u64(&mut rng) % 4 == 0 {
                    let mut tag = *sigs[victim].tag();
                    tag[victim % SIGNATURE_LEN] ^= 0x01;
                    sigs[victim] = Signature::from_tag(victim as u64, tag);
                }
            }
            let items: Vec<BatchItem> = sigs
                .iter()
                .enumerate()
                .map(|(i, sig)| BatchItem::new(i as u64, msg, sig))
                .collect();
            assert_eq!(reg.verify_batch_pooled(&items), reg.verify_batch(&items));
        }
    }
}
