//! Key material and the PKI registry.
//!
//! The paper assumes "standard digital signatures and public-key
//! infrastructure (PKI)" (§2). With no asymmetric-crypto crate in the
//! approved offline set, we substitute an HMAC-based scheme: each replica
//! holds a 32-byte secret key; a [`KeyRegistry`] (standing in for the PKI)
//! holds every replica's *verification* material and checks tags on behalf of
//! all parties. Within the simulation's threat model this preserves the
//! property that matters: a Byzantine replica cannot forge an honest
//! replica's signature, because signing requires the honest replica's secret
//! key and the simulator only hands each actor its own [`KeyPair`].

use std::fmt;
use std::sync::Arc;

use crate::hmac::{ct_eq, hmac_sha256};
use crate::rng::RngCore;
use crate::signature::Signature;

/// Length of secret keys in bytes.
pub const SECRET_KEY_LEN: usize = 32;

/// A replica's secret signing key.
#[derive(Clone)]
pub struct SecretKey([u8; SECRET_KEY_LEN]);

impl SecretKey {
    /// Generates a fresh random key.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; SECRET_KEY_LEN];
        rng.fill_bytes(&mut bytes);
        Self(bytes)
    }

    /// Deterministic key for replica `index` — used by tests and by
    /// deterministic simulations so that runs are reproducible.
    pub fn deterministic(index: u64) -> Self {
        let mut bytes = [0u8; SECRET_KEY_LEN];
        bytes[..8].copy_from_slice(&index.to_be_bytes());
        bytes[8..16].copy_from_slice(&0x5f74_6b65_795f_7631u64.to_be_bytes());
        Self(crate::sha256::Sha256::digest(&bytes))
    }

    pub(crate) fn mac(&self, message: &[u8]) -> [u8; 32] {
        hmac_sha256(&self.0, message)
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(..)")
    }
}

/// A signing key pair bound to a signer index.
///
/// # Examples
///
/// ```
/// use sft_crypto::{KeyPair, KeyRegistry};
///
/// let registry = KeyRegistry::deterministic(4);
/// let kp = registry.key_pair(2).expect("replica 2 exists");
/// let sig = kp.sign(b"hello");
/// assert!(registry.verify(2, b"hello", &sig));
/// assert!(!registry.verify(1, b"hello", &sig));
/// ```
#[derive(Clone, Debug)]
pub struct KeyPair {
    signer: u64,
    secret: SecretKey,
}

impl KeyPair {
    /// Creates a key pair for `signer` from a secret key.
    pub fn new(signer: u64, secret: SecretKey) -> Self {
        Self { signer, secret }
    }

    /// The signer index this key pair belongs to.
    pub fn signer(&self) -> u64 {
        self.signer
    }

    /// Signs `message`, producing an authenticator over (signer, message).
    pub fn sign(&self, message: &[u8]) -> Signature {
        let mut framed = Vec::with_capacity(8 + message.len());
        framed.extend_from_slice(&self.signer.to_be_bytes());
        framed.extend_from_slice(message);
        Signature::from_tag(self.signer, self.secret.mac(&framed))
    }
}

/// The PKI: verification material for all `n` replicas.
///
/// Cloning is cheap (shared `Arc`), so a registry can be handed to every
/// simulated replica and to the verification paths of the simulator itself.
#[derive(Clone)]
pub struct KeyRegistry {
    secrets: Arc<Vec<SecretKey>>,
}

impl KeyRegistry {
    /// Builds a registry of `n` random keys.
    pub fn generate<R: RngCore>(n: usize, rng: &mut R) -> Self {
        let secrets = (0..n).map(|_| SecretKey::generate(rng)).collect();
        Self {
            secrets: Arc::new(secrets),
        }
    }

    /// Builds a registry of `n` deterministic keys (reproducible runs).
    pub fn deterministic(n: usize) -> Self {
        let secrets = (0..n as u64).map(SecretKey::deterministic).collect();
        Self {
            secrets: Arc::new(secrets),
        }
    }

    /// Number of registered replicas.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// True if no replicas are registered.
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }

    /// Returns the key pair for `signer`, or `None` if out of range.
    ///
    /// The simulator calls this once per replica at startup; honest code
    /// never touches another replica's pair.
    pub fn key_pair(&self, signer: u64) -> Option<KeyPair> {
        self.secrets
            .get(signer as usize)
            .map(|secret| KeyPair::new(signer, secret.clone()))
    }

    /// Looks up `signer`'s verification material, if registered.
    pub(crate) fn secret(&self, signer: u64) -> Option<&SecretKey> {
        self.secrets.get(signer as usize)
    }

    /// Verifies that `sig` is `signer`'s signature over `message`.
    pub fn verify(&self, signer: u64, message: &[u8], sig: &Signature) -> bool {
        if sig.signer() != signer {
            return false;
        }
        let Some(secret) = self.secrets.get(signer as usize) else {
            return false;
        };
        let mut framed = Vec::with_capacity(8 + message.len());
        framed.extend_from_slice(&signer.to_be_bytes());
        framed.extend_from_slice(message);
        ct_eq(&secret.mac(&framed), sig.tag())
    }
}

impl fmt::Debug for KeyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyRegistry(n={})", self.secrets.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn sign_verify_roundtrip() {
        let reg = KeyRegistry::deterministic(7);
        for i in 0..7 {
            let kp = reg.key_pair(i).unwrap();
            let sig = kp.sign(b"msg");
            assert!(reg.verify(i, b"msg", &sig));
            assert!(!reg.verify(i, b"other", &sig));
        }
    }

    #[test]
    fn cross_signer_rejected() {
        let reg = KeyRegistry::deterministic(3);
        let sig = reg.key_pair(0).unwrap().sign(b"m");
        assert!(!reg.verify(1, b"m", &sig));
        assert!(!reg.verify(2, b"m", &sig));
    }

    #[test]
    fn unknown_signer_rejected() {
        let reg = KeyRegistry::deterministic(3);
        let sig = reg.key_pair(0).unwrap().sign(b"m");
        assert!(!reg.verify(99, b"m", &sig));
        assert!(reg.key_pair(99).is_none());
    }

    #[test]
    fn forged_tag_rejected() {
        let reg = KeyRegistry::deterministic(2);
        let sig = reg.key_pair(0).unwrap().sign(b"m");
        let mut bytes = *sig.tag();
        bytes[0] ^= 0xff;
        let forged = Signature::from_tag(0, bytes);
        assert!(!reg.verify(0, b"m", &forged));
    }

    #[test]
    fn random_and_deterministic_differ() {
        let mut rng = SplitMix64::new(42);
        let random = KeyRegistry::generate(2, &mut rng);
        let det = KeyRegistry::deterministic(2);
        let s1 = random.key_pair(0).unwrap().sign(b"m");
        let s2 = det.key_pair(0).unwrap().sign(b"m");
        assert_ne!(s1.tag(), s2.tag());
        assert_eq!(random.len(), 2);
        assert!(!det.is_empty());
    }

    #[test]
    fn deterministic_is_stable() {
        let a = KeyRegistry::deterministic(4);
        let b = KeyRegistry::deterministic(4);
        let sa = a.key_pair(3).unwrap().sign(b"x");
        let sb = b.key_pair(3).unwrap().sign(b"x");
        assert_eq!(sa.tag(), sb.tag());
    }
}
