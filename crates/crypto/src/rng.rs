//! Deterministic pseudo-randomness for key generation and simulations.
//!
//! The approved offline dependency set has no `rand` crate, so this module
//! provides the one abstraction the stack needs: a byte-filling [`RngCore`]
//! trait and a [`SplitMix64`] implementation. SplitMix64 (Steele, Lea &
//! Flood, OOPSLA 2014) passes BigCrush, needs eight bytes of state, and is
//! exactly reproducible across platforms — which is the property the
//! deterministic simulator actually depends on. None of this randomness is
//! security-critical: secret keys in the simulation threat model only need
//! to be distinct and unknown to other *simulated* actors.

/// Minimal random-number-generator interface (API-compatible subset of the
/// `rand` crate's trait of the same name).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The SplitMix64 generator: a 64-bit state advanced by a Weyl sequence and
/// finalized with an avalanching mix.
///
/// # Examples
///
/// ```
/// use sft_crypto::rng::{RngCore, SplitMix64};
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64(), "same seed, same stream");
/// assert_ne!(SplitMix64::new(8).next_u64(), SplitMix64::new(7).next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns a value uniform in `0..bound` (`bound > 0`); uses the
    /// widening-multiply trick to avoid modulo bias for small bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_values() {
        // First outputs for seed 0, cross-checked against the published
        // SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(rng.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
        // A second fill from the same stream differs from the first.
        let mut buf2 = [0u8; 13];
        rng.fill_bytes(&mut buf2);
        assert_ne!(buf, buf2);
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "next_below(0)")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        let mut rng = SplitMix64::new(5);
        fn take(r: &mut dyn RngCore) -> u64 {
            r.next_u64()
        }
        let direct = SplitMix64::new(5).next_u64();
        assert_eq!(take(&mut rng), direct);
    }
}
