//! Batched signature verification.
//!
//! Verifying a forming quorum certificate means checking `2f + 1` (or
//! `f + x + 1`) signatures that all cover the *same* vote data. Checking
//! them one at a time costs one registry lookup, one message framing and
//! one constant-time comparison each. [`KeyRegistry::verify_batch`] does
//! the whole set in a single pass: every MAC is computed once, each
//! item's *contribution* `Sha256(i ‖ computed) ⊕ Sha256(i ‖ claimed)`
//! is cached and XOR-folded into one accumulator, and a single
//! constant-time comparison against zero settles the batch. Only when
//! that aggregate check fails does the rejection path run — a bisection
//! over the *cached* contributions (no MAC is ever recomputed) that
//! pinpoints exactly which signatures are forged.
//!
//! The aggregate-then-bisect shape mirrors real batch verification for
//! aggregatable schemes (BLS-style): a threshold scheme can slot in
//! behind the same API. For the HMAC stand-in the concrete savings are
//! the shared message framing, the single pass over the registry, and
//! the one-comparison accept path. Folding raw `computed ⊕ claimed`
//! differences would be unsound here: a Byzantine relayer who flips the
//! same bit in two honest signatures makes both differences equal that
//! flip mask, and they cancel. Hashing each side with the item index as
//! a domain separator closes that — a valid item contributes exactly
//! zero, and cancelling any non-zero contribution requires a SHA-256
//! collision (the index prefix rules out cross-item replays).

use crate::hmac::ct_eq;
use crate::keys::KeyRegistry;
use crate::signature::{Signature, SIGNATURE_LEN};

/// One (signer, message, signature) claim inside a batch.
///
/// Messages may differ across items — strong votes share their vote-data
/// digest but carry per-voter endorsement info, so the batch API takes
/// the full signed message per item and leaves digest sharing to the
/// caller.
#[derive(Clone, Copy, Debug)]
pub struct BatchItem<'a> {
    /// The claimed signer index.
    pub signer: u64,
    /// The exact bytes the signature covers.
    pub message: &'a [u8],
    /// The signature to check.
    pub signature: &'a Signature,
}

impl<'a> BatchItem<'a> {
    /// Builds a batch item.
    pub fn new(signer: u64, message: &'a [u8], signature: &'a Signature) -> Self {
        Self {
            signer,
            message,
            signature,
        }
    }
}

/// Signature-verification work counters, kept by vote/timeout
/// aggregators and rolled up into run reports.
///
/// Lives in `sft-crypto` (not the observability crate) so that the type
/// layer can count verification work without growing a metrics
/// dependency.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SigStats {
    /// Signatures verified one at a time ([`KeyRegistry::verify`]).
    pub verifications: u64,
    /// Calls to [`KeyRegistry::verify_batch`].
    pub batch_calls: u64,
    /// Signatures checked inside batch passes (valid and forged alike).
    pub batch_verified: u64,
    /// Batches whose aggregate check failed and took the bisection path.
    pub batch_rejects: u64,
}

impl SigStats {
    /// Folds `other` into `self` (element-wise sum).
    pub fn merge(&mut self, other: SigStats) {
        self.verifications += other.verifications;
        self.batch_calls += other.batch_calls;
        self.batch_verified += other.batch_verified;
        self.batch_rejects += other.batch_rejects;
    }

    /// Counts one individual verification.
    pub fn count_verify(&mut self) {
        self.verifications += 1;
    }

    /// Counts one batch pass over `items` signatures, `rejected` or not.
    pub fn count_batch(&mut self, items: usize, rejected: bool) {
        self.batch_calls += 1;
        self.batch_verified += items as u64;
        if rejected {
            self.batch_rejects += 1;
        }
    }
}

/// XOR-folds `contribution` into `acc`.
pub(crate) fn fold(acc: &mut [u8; 32], contribution: &[u8; 32]) {
    for (a, c) in acc.iter_mut().zip(contribution) {
        *a ^= c;
    }
}

/// `Sha256(index ‖ tag)` — one side of an item's fold contribution. The
/// index prefix domain-separates items so contributions of distinct
/// items can never cancel without a hash collision.
pub(crate) fn side(index: usize, tag: &[u8; SIGNATURE_LEN]) -> [u8; 32] {
    let mut buf = [0u8; 8 + SIGNATURE_LEN];
    buf[..8].copy_from_slice(&(index as u64).to_be_bytes());
    buf[8..].copy_from_slice(tag);
    crate::sha256::Sha256::digest(&buf)
}

/// Bisects over cached per-item contributions, appending the indices of
/// every item whose contribution is provably non-zero. `range` indexes
/// into `contributions`; indices are reported through `map` (the
/// caller's original item indices).
pub(crate) fn bisect(
    contributions: &[[u8; 32]],
    map: &[usize],
    range: std::ops::Range<usize>,
    forged: &mut Vec<usize>,
) {
    let mut acc = [0u8; 32];
    for contribution in &contributions[range.clone()] {
        fold(&mut acc, contribution);
    }
    if ct_eq(&acc, &[0u8; 32]) {
        return;
    }
    if range.len() == 1 {
        forged.push(map[range.start]);
        return;
    }
    let mid = range.start + range.len() / 2;
    bisect(contributions, map, range.start..mid, forged);
    bisect(contributions, map, mid..range.end, forged);
}

impl KeyRegistry {
    /// Verifies every item in one pass.
    ///
    /// Accept path: one MAC per item (cached), one XOR fold, one
    /// constant-time comparison for the whole batch. Reject path:
    /// bisection over the cached differences — `O(log n)` aggregate
    /// re-folds, zero MAC recomputation — naming exactly the forged
    /// item indices.
    ///
    /// # Errors
    ///
    /// Returns the sorted indices (into `items`) of every signature
    /// that does not verify.
    pub fn verify_batch(&self, items: &[BatchItem<'_>]) -> Result<(), Vec<usize>> {
        // Items whose claimed signer is malformed (mismatched or
        // unregistered) are forged by inspection: no MAC to compute.
        let mut forged = Vec::new();
        let mut contributions: Vec<[u8; 32]> = Vec::with_capacity(items.len());
        let mut map: Vec<usize> = Vec::with_capacity(items.len());
        let mut acc = [0u8; 32];
        let mut framed = Vec::new();
        for (index, item) in items.iter().enumerate() {
            if item.signature.signer() != item.signer {
                forged.push(index);
                continue;
            }
            let Some(secret) = self.secret(item.signer) else {
                forged.push(index);
                continue;
            };
            framed.clear();
            framed.extend_from_slice(&item.signer.to_be_bytes());
            framed.extend_from_slice(item.message);
            let computed = secret.mac(&framed);
            let mut contribution = side(index, &computed);
            fold(&mut contribution, &side(index, item.signature.tag()));
            fold(&mut acc, &contribution);
            contributions.push(contribution);
            map.push(index);
        }
        if forged.is_empty() && ct_eq(&acc, &[0u8; 32]) {
            return Ok(());
        }
        if !ct_eq(&acc, &[0u8; 32]) {
            bisect(&contributions, &map, 0..contributions.len(), &mut forged);
        }
        forged.sort_unstable();
        Err(forged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn signed(registry: &KeyRegistry, signer: u64, message: &[u8]) -> Signature {
        registry.key_pair(signer).unwrap().sign(message)
    }

    #[test]
    fn all_valid_batch_accepts() {
        let reg = KeyRegistry::deterministic(7);
        let msgs: Vec<Vec<u8>> = (0..7u64).map(|i| format!("msg-{i}").into_bytes()).collect();
        let sigs: Vec<Signature> = (0..7u64)
            .map(|i| signed(&reg, i, &msgs[i as usize]))
            .collect();
        let items: Vec<BatchItem> = (0..7usize)
            .map(|i| BatchItem::new(i as u64, &msgs[i], &sigs[i]))
            .collect();
        assert_eq!(reg.verify_batch(&items), Ok(()));
    }

    #[test]
    fn empty_batch_accepts() {
        let reg = KeyRegistry::deterministic(3);
        assert_eq!(reg.verify_batch(&[]), Ok(()));
    }

    #[test]
    fn bisection_pinpoints_single_forgery() {
        let reg = KeyRegistry::deterministic(8);
        let msg = b"block-digest";
        let mut sigs: Vec<Signature> = (0..8u64).map(|i| signed(&reg, i, msg)).collect();
        // Replica 5's tag is corrupted in transit.
        let mut tag = *sigs[5].tag();
        tag[13] ^= 0x40;
        sigs[5] = Signature::from_tag(5, tag);
        let items: Vec<BatchItem> = sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| BatchItem::new(i as u64, msg, sig))
            .collect();
        assert_eq!(reg.verify_batch(&items), Err(vec![5]));
    }

    #[test]
    fn bisection_pinpoints_multiple_forgeries() {
        let reg = KeyRegistry::deterministic(9);
        let msg = b"round-7";
        let mut sigs: Vec<Signature> = (0..9u64).map(|i| signed(&reg, i, msg)).collect();
        for &victim in &[0usize, 4, 8] {
            let mut tag = *sigs[victim].tag();
            tag[0] ^= 0x01;
            sigs[victim] = Signature::from_tag(victim as u64, tag);
        }
        let items: Vec<BatchItem> = sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| BatchItem::new(i as u64, msg, sig))
            .collect();
        assert_eq!(reg.verify_batch(&items), Err(vec![0, 4, 8]));
    }

    #[test]
    fn wrong_message_is_a_forgery() {
        let reg = KeyRegistry::deterministic(4);
        let good = signed(&reg, 0, b"agreed");
        let stale = signed(&reg, 1, b"superseded");
        let items = [
            BatchItem::new(0, b"agreed", &good),
            BatchItem::new(1, b"agreed", &stale),
        ];
        assert_eq!(reg.verify_batch(&items), Err(vec![1]));
    }

    #[test]
    fn signer_mismatch_and_unknown_signer_are_forgeries() {
        let reg = KeyRegistry::deterministic(3);
        let sig0 = signed(&reg, 0, b"m");
        let sig1 = signed(&reg, 1, b"m");
        let ghost = KeyPair::new(99, crate::keys::SecretKey::deterministic(99)).sign(b"m");
        let items = [
            // Claimed signer 2 but the signature names signer 0.
            BatchItem::new(2, b"m", &sig0),
            BatchItem::new(1, b"m", &sig1),
            // Signer 99 is not in a 3-replica registry.
            BatchItem::new(99, b"m", &ghost),
        ];
        assert_eq!(reg.verify_batch(&items), Err(vec![0, 2]));
    }

    #[test]
    fn batch_agrees_with_individual_verification() {
        let reg = KeyRegistry::deterministic(16);
        let msg = b"parity";
        let mut sigs: Vec<Signature> = (0..16u64).map(|i| signed(&reg, i, msg)).collect();
        for &victim in &[3usize, 7, 11] {
            sigs[victim] = Signature::from_tag(victim as u64, [0xab; SIGNATURE_LEN]);
        }
        let items: Vec<BatchItem> = sigs
            .iter()
            .enumerate()
            .map(|(i, sig)| BatchItem::new(i as u64, msg, sig))
            .collect();
        let individually: Vec<usize> = items
            .iter()
            .enumerate()
            .filter(|(_, item)| !reg.verify(item.signer, item.message, item.signature))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(reg.verify_batch(&items), Err(individually));
    }

    #[test]
    fn stats_fold() {
        let mut stats = SigStats::default();
        stats.count_verify();
        stats.count_batch(5, false);
        stats.count_batch(3, true);
        let mut total = SigStats {
            verifications: 1,
            ..Default::default()
        };
        total.merge(stats);
        assert_eq!(total.verifications, 2);
        assert_eq!(total.batch_calls, 2);
        assert_eq!(total.batch_verified, 8);
        assert_eq!(total.batch_rejects, 1);
    }
}
