//! # sft-crypto
//!
//! Cryptographic substrate for the SFT BFT reproduction: SHA-256 implemented
//! from FIPS 180-4, HMAC-SHA-256, a [`HashValue`] digest newtype, and an
//! HMAC-based signature scheme with a [`KeyRegistry`] standing in for the PKI
//! assumed by the paper (§2).
//!
//! ## Why not a crypto crate?
//!
//! The approved offline dependency set contains no cryptographic crates, so
//! this crate implements the primitives from their specifications and
//! validates them against published test vectors (NIST FIPS 180-4 examples,
//! RFC 4231). See `DESIGN.md` §2 for the substitution rationale.
//!
//! ## Example
//!
//! ```
//! use sft_crypto::{HashValue, KeyRegistry};
//!
//! let registry = KeyRegistry::deterministic(4);
//! let kp = registry.key_pair(0).expect("replica 0 exists");
//! let digest = HashValue::of(b"block payload");
//! let sig = kp.sign(digest.as_ref());
//! assert!(registry.verify(0, digest.as_ref(), &sig));
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod hash;
pub mod hmac;
pub mod keys;
pub mod pool;
pub mod rng;
pub mod sha256;
pub mod signature;

pub use batch::{BatchItem, SigStats};
pub use hash::{HashValue, Hasher};
pub use keys::{KeyPair, KeyRegistry, SecretKey};
pub use pool::{pool_workers, PARALLEL_THRESHOLD};
pub use rng::{RngCore, SplitMix64};
pub use signature::Signature;
