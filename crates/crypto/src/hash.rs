//! The [`HashValue`] newtype: a 32-byte SHA-256 digest with ergonomic
//! formatting, ordering, and prefix display used throughout the stack for
//! block ids and transaction ids.

use std::fmt;

use crate::sha256::{Sha256, DIGEST_LEN};

/// A 256-bit hash value (SHA-256 output).
///
/// Used as block identifiers (`H(B_{k-1})` in the paper's block format, §2.1)
/// and transaction identifiers.
///
/// # Examples
///
/// ```
/// use sft_crypto::HashValue;
///
/// let h = HashValue::of(b"abc");
/// assert_ne!(h, HashValue::zero());
/// assert_eq!(h, HashValue::of(b"abc"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HashValue([u8; DIGEST_LEN]);

impl HashValue {
    /// Number of bytes in a hash value.
    pub const LEN: usize = DIGEST_LEN;

    /// The all-zero hash, used as the parent id of the genesis block.
    pub const fn zero() -> Self {
        Self([0u8; DIGEST_LEN])
    }

    /// Hashes `data` with SHA-256.
    pub fn of(data: &[u8]) -> Self {
        Self(Sha256::digest(data))
    }

    /// Wraps raw digest bytes.
    pub const fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Self(bytes)
    }

    /// Returns the digest bytes.
    pub const fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// True if this is the all-zero hash.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// A short hex prefix for log-friendly display.
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl Default for HashValue {
    fn default() -> Self {
        Self::zero()
    }
}

impl fmt::Debug for HashValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HashValue({})", self.short())
    }
}

impl fmt::Display for HashValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl AsRef<[u8]> for HashValue {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for HashValue {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Self(bytes)
    }
}

/// Incremental builder for hashing structured data.
///
/// Domain separation: every hash starts with a tag so that, e.g., a block id
/// can never collide with a vote digest.
///
/// # Examples
///
/// ```
/// use sft_crypto::Hasher;
///
/// let h1 = Hasher::new("block").field(&1u64.to_be_bytes()).finish();
/// let h2 = Hasher::new("vote").field(&1u64.to_be_bytes()).finish();
/// assert_ne!(h1, h2);
/// ```
#[derive(Clone, Debug)]
pub struct Hasher {
    inner: Sha256,
}

impl Hasher {
    /// Starts a hash with the domain-separation `tag`.
    pub fn new(tag: &str) -> Self {
        let mut inner = Sha256::new();
        inner.update(&(tag.len() as u64).to_be_bytes());
        inner.update(tag.as_bytes());
        Self { inner }
    }

    /// Appends a length-prefixed field.
    pub fn field(mut self, bytes: &[u8]) -> Self {
        self.inner.update(&(bytes.len() as u64).to_be_bytes());
        self.inner.update(bytes);
        self
    }

    /// Finishes and returns the digest.
    pub fn finish(self) -> HashValue {
        HashValue(self.inner.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        assert!(HashValue::zero().is_zero());
        assert!(!HashValue::of(b"x").is_zero());
    }

    #[test]
    fn display_is_hex() {
        let h = HashValue::of(b"abc");
        assert_eq!(
            h.to_string(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(h.short(), "ba7816bf");
    }

    #[test]
    fn hasher_domain_separation() {
        let a = Hasher::new("a").field(b"x").finish();
        let b = Hasher::new("b").field(b"x").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn hasher_field_framing() {
        // ("ab", "c") must differ from ("a", "bc"): length prefixes matter.
        let one = Hasher::new("t").field(b"ab").field(b"c").finish();
        let two = Hasher::new("t").field(b"a").field(b"bc").finish();
        assert_ne!(one, two);
    }

    #[test]
    fn ordering_is_bytewise() {
        let lo = HashValue::from_bytes([0u8; 32]);
        let mut hi_bytes = [0u8; 32];
        hi_bytes[0] = 1;
        let hi = HashValue::from_bytes(hi_bytes);
        assert!(lo < hi);
    }
}
