//! Outbound-ring machinery shared by the socket transports.
//!
//! Both real-socket transports queue pre-framed buffers per peer and
//! drain them from writer threads. The queue used to be an `mpsc`
//! channel with one dedicated writer thread per connection — `n(n − 1)`
//! threads for the in-process mesh, which stops scaling long before the
//! paper's larger replica counts (n = 121 would need ~14k writer
//! threads). An [`OutRing`] is the channel's replacement: a bounded
//! `VecDeque` under a mutex, with a condvar for the blocking consumers
//! and a partial-write cursor so a *single* non-blocking writer thread
//! can round-robin every connection and resume a half-written frame
//! where it left off.
//!
//! Two drain styles share the type:
//!
//! - [`OutRing::flush_nonblocking`] — the cluster's one writer thread
//!   flushes each ring onto its non-blocking socket until it would
//!   block, then moves to the next connection;
//! - [`OutRing::front_blocking`] / [`OutRing::advance`] — a
//!   [`NodeTransport`](crate::NodeTransport) per-peer writer peeks the
//!   front frame, blocking-writes it on its reconnecting socket, and
//!   pops it only once fully sent (a failed write retries the same
//!   frame on the next connection).
//!
//! A [`Notifier`] is the single wake-up channel of the cluster's writer
//! thread: every enqueue on any ring signals it, so the thread sleeps —
//! not spins — while the mesh is quiet.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use sft_types::SendGate;

/// Per-connection ring depth. Deep enough that a burst of pipelined
/// rounds never stalls the consensus loop; bounded so a dead peer
/// exerts backpressure (cluster) or costs fixed memory (node) instead
/// of growing without bound.
pub(crate) const RING_DEPTH: usize = 1024;

/// What one non-blocking flush pass over a ring concluded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Flush {
    /// Ring drained; more frames may arrive later.
    Clean,
    /// The socket would block with frames still queued; retry later.
    Blocked,
    /// Ring drained *and* closed: no frame will ever follow. The caller
    /// should shut the connection down and forget it.
    Done,
    /// The socket failed mid-write; the connection is gone.
    Dead,
}

/// One queued outbound frame plus its optional durability gate: a gated
/// frame must not start hitting the socket until the gate is open (the
/// WAL records justifying the message are durable). Frames queue in
/// send order with monotone gate sequences, so holding the front frame
/// holds everything behind it — gating delays, never reorders.
struct QueuedFrame {
    bytes: Arc<[u8]>,
    gate: Option<SendGate>,
}

/// The guarded interior of an [`OutRing`].
struct RingState {
    queue: VecDeque<QueuedFrame>,
    /// Bytes of the front frame already written (the partial-write
    /// cursor of the non-blocking flush path).
    offset: usize,
    /// No further frames will be accepted; consumers drain and stop.
    closed: bool,
}

/// One peer connection's bounded outbound frame queue. See the
/// [module docs](self) for how the two transports drain it.
pub(crate) struct OutRing {
    state: Mutex<RingState>,
    /// Woken on every push, pop, and close — producers wait here for
    /// space, blocking consumers for frames.
    wake: Condvar,
}

impl OutRing {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(RingState {
                queue: VecDeque::new(),
                offset: 0,
                closed: false,
            }),
            wake: Condvar::new(),
        })
    }

    /// Enqueues without blocking. `false` — the caller counts a drop —
    /// when the ring is closed or full. (The transports now always go
    /// through the gated variant; this shorthand serves the tests.)
    #[cfg(test)]
    pub(crate) fn push(&self, frame: Arc<[u8]>) -> bool {
        self.push_gated(frame, None)
    }

    /// [`push`](Self::push) with an optional durability gate the
    /// consumer must see open before writing the frame.
    pub(crate) fn push_gated(&self, frame: Arc<[u8]>, gate: Option<SendGate>) -> bool {
        let mut state = self.state.lock().expect("ring lock");
        if state.closed || state.queue.len() >= RING_DEPTH {
            return false;
        }
        state.queue.push_back(QueuedFrame { bytes: frame, gate });
        self.wake.notify_all();
        true
    }

    /// Enqueues, waiting for space while the ring is full — the
    /// backpressure of a producer that must not silently lose frames.
    /// `false` only when the ring is (or gets) closed. (Transports go
    /// through the gated variant; this shorthand serves the tests.)
    #[cfg(test)]
    pub(crate) fn push_blocking(&self, frame: Arc<[u8]>) -> bool {
        self.push_blocking_gated(frame, None)
    }

    /// [`push_blocking`](Self::push_blocking) with an optional
    /// durability gate.
    pub(crate) fn push_blocking_gated(&self, frame: Arc<[u8]>, gate: Option<SendGate>) -> bool {
        let mut state = self.state.lock().expect("ring lock");
        while !state.closed && state.queue.len() >= RING_DEPTH {
            state = self.wake.wait(state).expect("ring lock");
        }
        if state.closed {
            return false;
        }
        state.queue.push_back(QueuedFrame { bytes: frame, gate });
        self.wake.notify_all();
        true
    }

    /// Marks the ring closed: pushes fail from now on, and consumers
    /// stop once the remaining frames are drained.
    pub(crate) fn close(&self) {
        let mut state = self.state.lock().expect("ring lock");
        state.closed = true;
        self.wake.notify_all();
    }

    /// Waits until a frame is available and returns a handle to the
    /// front one (plus its durability gate, if any) *without* popping
    /// it, or `None` once the ring is closed and drained. The caller
    /// must see the gate open before writing. Pair with
    /// [`advance`](Self::advance) after a successful write; not popping
    /// first is what lets a reconnecting writer retry the same frame on
    /// a fresh connection.
    pub(crate) fn front_blocking(&self) -> Option<(Arc<[u8]>, Option<SendGate>)> {
        let mut state = self.state.lock().expect("ring lock");
        loop {
            if let Some(front) = state.queue.front() {
                return Some((Arc::clone(&front.bytes), front.gate.clone()));
            }
            if state.closed {
                return None;
            }
            state = self.wake.wait(state).expect("ring lock");
        }
    }

    /// Pops the front frame (fully written by a blocking writer).
    pub(crate) fn advance(&self) {
        let mut state = self.state.lock().expect("ring lock");
        state.queue.pop_front();
        self.wake.notify_all();
    }

    /// Writes queued frames onto a non-blocking `stream` until the ring
    /// drains, the socket pushes back, or the front frame's durability
    /// gate is still closed (reported as [`Flush::Blocked`] — the
    /// writer's timed retry doubles as the gate poll, and the WAL
    /// writer's wake hook signals it the moment the fsync lands).
    /// Resumes any half-written frame at its cursor; a frame's gate is
    /// only consulted before its first byte, which is sound because
    /// gates open monotonically. Returns whether any bytes were written
    /// and the resulting [`Flush`] status. The lock is never held
    /// across a write syscall.
    pub(crate) fn flush_nonblocking(&self, stream: &mut TcpStream) -> (bool, Flush) {
        let mut wrote = false;
        loop {
            let (frame, offset) = {
                let state = self.state.lock().expect("ring lock");
                match state.queue.front() {
                    Some(front) => {
                        if state.offset == 0
                            && front.gate.as_ref().is_some_and(|gate| !gate.is_open())
                        {
                            return (wrote, Flush::Blocked);
                        }
                        (Arc::clone(&front.bytes), state.offset)
                    }
                    None => {
                        let status = if state.closed {
                            Flush::Done
                        } else {
                            Flush::Clean
                        };
                        return (wrote, status);
                    }
                }
            };
            match stream.write(&frame[offset..]) {
                Ok(0) => return (wrote, Flush::Dead),
                Ok(written) => {
                    wrote = true;
                    let mut state = self.state.lock().expect("ring lock");
                    state.offset += written;
                    if state.offset >= frame.len() {
                        state.queue.pop_front();
                        state.offset = 0;
                        self.wake.notify_all();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return (wrote, Flush::Blocked),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return (wrote, Flush::Dead),
            }
        }
    }
}

/// The cluster writer thread's wake-up line: a level-triggered dirty
/// flag under a mutex + condvar. Producers [`signal`](Self::signal)
/// after every enqueue; the writer [`wait`](Self::wait)s when it has
/// nothing to do (with a timeout while some socket is pushing back, so
/// kernel buffers draining — which no enqueue announces — are retried).
pub(crate) struct Notifier {
    dirty: Mutex<bool>,
    wake: Condvar,
}

impl Notifier {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            dirty: Mutex::new(false),
            wake: Condvar::new(),
        })
    }

    /// Raises the flag and wakes the writer.
    pub(crate) fn signal(&self) {
        let mut dirty = self.dirty.lock().expect("notifier lock");
        *dirty = true;
        self.wake.notify_one();
    }

    /// Sleeps until signalled (or `timeout`, when given) and lowers the
    /// flag. A signal raised since the last wait returns immediately —
    /// the flag is level-triggered, so no enqueue is ever missed.
    pub(crate) fn wait(&self, timeout: Option<Duration>) {
        let mut dirty = self.dirty.lock().expect("notifier lock");
        match timeout {
            Some(limit) => {
                if !*dirty {
                    let (guard, _) = self.wake.wait_timeout(dirty, limit).expect("notifier lock");
                    dirty = guard;
                }
            }
            None => {
                while !*dirty {
                    dirty = self.wake.wait(dirty).expect("notifier lock");
                }
            }
        }
        *dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::TcpListener;

    fn frame(byte: u8, len: usize) -> Arc<[u8]> {
        vec![byte; len].into()
    }

    /// A connected non-blocking loopback pair.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        client.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn push_respects_depth_and_close() {
        let ring = OutRing::new();
        for _ in 0..RING_DEPTH {
            assert!(ring.push(frame(1, 4)));
        }
        assert!(!ring.push(frame(1, 4)), "full ring rejects");
        ring.close();
        assert!(!ring.push_blocking(frame(1, 4)), "closed ring rejects");
    }

    #[test]
    fn front_blocking_peeks_and_advance_pops() {
        let ring = OutRing::new();
        assert!(ring.push(frame(7, 3)));
        let (first, gate) = ring.front_blocking().unwrap();
        assert_eq!(first[..], [7, 7, 7]);
        assert!(gate.is_none(), "ungated push carries no gate");
        // Still the front: a failed write would retry the same frame.
        assert_eq!(ring.front_blocking().unwrap().0[..], [7, 7, 7]);
        ring.advance();
        ring.close();
        assert!(ring.front_blocking().is_none(), "closed and drained");
    }

    #[test]
    fn closed_gate_blocks_the_flush_until_the_watermark_covers_it() {
        use sft_types::Watermark;
        let (mut tx, mut rx) = socket_pair();
        let ring = OutRing::new();
        let wm = Watermark::new();
        assert!(ring.push(frame(1, 2)));
        assert!(ring.push_gated(frame(2, 2), Some(SendGate::new(wm.clone(), 3))));
        assert!(
            ring.push(frame(3, 2)),
            "ungated frame queued behind the gate"
        );
        // First flush: the ungated frame goes out, the gated one holds
        // everything behind it (FIFO — gating never reorders).
        let (wrote, status) = ring.flush_nonblocking(&mut tx);
        assert!(wrote);
        assert_eq!(status, Flush::Blocked, "closed gate reports Blocked");
        let mut got = [0u8; 2];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(got, [1, 1]);
        // Still blocked on retry while the watermark lags.
        wm.advance(2);
        assert_eq!(ring.flush_nonblocking(&mut tx).1, Flush::Blocked);
        // Watermark covers the gate: both remaining frames drain in order.
        wm.advance(3);
        let (wrote, status) = ring.flush_nonblocking(&mut tx);
        assert!(wrote);
        assert_eq!(status, Flush::Clean);
        let mut rest = [0u8; 4];
        rx.read_exact(&mut rest).unwrap();
        assert_eq!(rest, [2, 2, 3, 3]);
    }

    #[test]
    fn front_blocking_hands_the_gate_to_the_consumer() {
        use sft_types::Watermark;
        let ring = OutRing::new();
        let wm = Watermark::new();
        assert!(ring.push_blocking_gated(frame(5, 1), Some(SendGate::new(wm.clone(), 1))));
        let (_, gate) = ring.front_blocking().unwrap();
        let gate = gate.expect("gate travels with the frame");
        assert!(!gate.is_open());
        wm.advance(1);
        assert!(gate.is_open());
    }

    #[test]
    fn flush_drains_frames_onto_the_socket() {
        let (mut tx, mut rx) = socket_pair();
        let ring = OutRing::new();
        assert!(ring.push(frame(1, 3)));
        assert!(ring.push(frame(2, 2)));
        let (wrote, status) = ring.flush_nonblocking(&mut tx);
        assert!(wrote);
        assert_eq!(status, Flush::Clean);
        let mut got = [0u8; 5];
        rx.read_exact(&mut got).unwrap();
        assert_eq!(got, [1, 1, 1, 2, 2]);
    }

    #[test]
    fn flush_resumes_a_partial_write_after_blocking() {
        let (mut tx, mut rx) = socket_pair();
        let ring = OutRing::new();
        // A frame far larger than loopback socket buffers: the first
        // flush must hit WouldBlock partway through.
        let big = frame(9, 32 * 1024 * 1024);
        assert!(ring.push(Arc::clone(&big)));
        let (wrote, status) = ring.flush_nonblocking(&mut tx);
        assert!(wrote);
        assert_eq!(status, Flush::Blocked, "kernel buffer filled mid-frame");
        // Drain the receiving side, then resume: the cursor picks up
        // exactly where the first pass stopped.
        let mut total = Vec::new();
        let mut chunk = [0u8; 64 * 1024];
        loop {
            let read = rx.read(&mut chunk).unwrap();
            total.extend_from_slice(&chunk[..read]);
            if total.len() >= big.len() {
                break;
            }
            match ring.flush_nonblocking(&mut tx) {
                (_, Flush::Blocked) | (_, Flush::Clean) => {}
                (_, other) => panic!("unexpected flush status {other:?}"),
            }
        }
        assert_eq!(total.len(), big.len());
        assert!(total.iter().all(|b| *b == 9), "no bytes torn or reordered");
        assert_eq!(ring.flush_nonblocking(&mut tx).1, Flush::Clean);
    }

    #[test]
    fn flush_reports_done_when_closed_and_drained() {
        let (mut tx, _rx) = socket_pair();
        let ring = OutRing::new();
        assert!(ring.push(frame(4, 2)));
        ring.close();
        let (wrote, status) = ring.flush_nonblocking(&mut tx);
        assert!(wrote, "close drains queued frames before reporting done");
        assert_eq!(status, Flush::Done);
    }

    #[test]
    fn flush_reports_dead_on_a_broken_socket() {
        let (mut tx, rx) = socket_pair();
        drop(rx);
        let ring = OutRing::new();
        // Large enough to overrun the kernel buffer of a closed peer.
        assert!(ring.push(frame(1, 32 * 1024 * 1024)));
        // The first write may land in the kernel buffer; keep flushing
        // until the broken pipe surfaces.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match ring.flush_nonblocking(&mut tx).1 {
                Flush::Dead => break,
                _ if std::time::Instant::now() > deadline => {
                    panic!("broken socket never reported dead")
                }
                _ => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }

    #[test]
    fn push_blocking_waits_for_space() {
        let ring = OutRing::new();
        for _ in 0..RING_DEPTH {
            assert!(ring.push(frame(1, 1)));
        }
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push_blocking(frame(2, 1)))
        };
        std::thread::sleep(Duration::from_millis(20));
        ring.advance(); // consumer frees one slot
        assert!(producer.join().unwrap(), "blocked push lands after a pop");
    }

    #[test]
    fn notifier_is_level_triggered() {
        let notifier = Notifier::new();
        notifier.signal();
        // A signal before the wait is not lost.
        notifier.wait(Some(Duration::from_secs(5)));
        // And the flag was consumed: the next timed wait expires.
        let start = std::time::Instant::now();
        notifier.wait(Some(Duration::from_millis(20)));
        assert!(start.elapsed() >= Duration::from_millis(10));
    }
}
