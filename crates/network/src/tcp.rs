//! Real-socket transport: a loopback TCP mesh speaking length-prefixed
//! [`Envelope`] frames.
//!
//! Hand-rolled on `std::net` + threads — the build environment has no
//! registry access, so there is no async runtime to lean on, and none is
//! needed: the FeBFT shape (typed envelopes consumed from an
//! executor-agnostic transport) works just as well over a small poll
//! loop on non-blocking sockets.
//!
//! ## Architecture
//!
//! A [`TcpCluster`] hosts `n` replica endpoints in one process, connected
//! full-mesh over `127.0.0.1` ephemeral ports. The thread model is
//! O(n), not O(n²) — at n = 121 the previous
//! one-thread-per-direction design would have needed ~29k threads for
//! 14 520 connections; this one needs 122:
//!
//! - every ordered pair `(i → j)` still gets its own TCP connection, but
//!   outbound frames queue on a per-connection `OutRing` and **one
//!   writer thread** drains all `n(n − 1)` rings onto non-blocking
//!   sockets, resuming partial writes where the kernel pushed back. A
//!   broadcast enqueues one shared pre-framed buffer on `n − 1` rings
//!   (encode once, `Arc` fan-out, exactly like the simulator), and a
//!   full ring blocks the sender — bounded memory, no silent loss;
//! - each endpoint gets **one reader thread** multiplexing its `n − 1`
//!   accepted connections: non-blocking reads feed per-connection
//!   `FrameDecoder`s, validated [`Delivery`]s land in one **shared
//!   inbound queue** the run loop polls, and an idle endpoint backs off
//!   its poll sleep (10 µs doubling to 2 ms) so quiet meshes cost
//!   near-zero CPU without adding tail latency under load.
//!
//! Frames that fail to decode, carry the wrong [`ProtocolTag`], or name
//! a `Dest::Peer` other than the receiving endpoint terminate that
//! connection — a transport does not forward bytes it cannot vouch for.
//!
//! ## Time
//!
//! The [`Transport`] time source is wall-clock microseconds since cluster
//! construction, expressed as [`SimTime`] — engines built for the
//! simulator run unchanged; only the meaning of a microsecond differs.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sft_obs::{names, PhaseTimer, SharedRecorder};
use sft_types::{Envelope, ProtocolTag, ReplicaId, SendGate, SimTime};

use crate::frame::FrameDecoder;
use crate::outbox::{Flush, Notifier, OutRing};
use crate::{ClientDelivery, Delivery, NetworkStats, Transport};

/// Endpoint readers back off their poll sleep from here…
const READ_IDLE_MIN: Duration = Duration::from_micros(10);
/// …up to here while their connections stay silent.
const READ_IDLE_MAX: Duration = Duration::from_millis(2);
/// Writer retry interval while some socket is pushing back: kernel
/// buffers drain without any enqueue to signal it, so the wait must
/// time out.
const FLUSH_RETRY: Duration = Duration::from_micros(200);

/// One outbound connection as the writer thread owns it: the
/// non-blocking socket plus the ring feeding it.
struct WriterConn {
    stream: TcpStream,
    ring: Arc<OutRing>,
}

/// One accepted client connection, owned by the gateway and serviced
/// from the run-loop thread (no thread of its own): the non-blocking
/// socket, the [`ProtocolTag::Client`] decoder, the replica whose
/// listener accepted it, and any ack bytes the kernel pushed back on.
struct ClientConn {
    stream: TcpStream,
    decoder: FrameDecoder,
    replica: ReplicaId,
    /// Framed ack bytes not yet accepted by the socket.
    unsent: VecDeque<u8>,
}

/// An `n`-endpoint loopback TCP mesh implementing [`Transport`]. See the
/// [module docs](self) for the thread and framing architecture.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sft_network::{ProtocolTag, TcpCluster, Transport};
/// use sft_types::{ReplicaId, SimDuration};
///
/// let mut cluster = TcpCluster::loopback(3, ProtocolTag::Fbft).unwrap();
/// let payload: Arc<[u8]> = vec![1, 2, 3].into();
/// cluster.broadcast(ReplicaId::new(0), payload);
/// let deadline = cluster.now() + SimDuration::from_secs(5);
/// let mut got = Vec::new();
/// while got.len() < 2 {
///     let batch = cluster.poll_deliver(deadline);
///     assert!(!batch.is_empty(), "loopback delivery within the deadline");
///     got.extend(batch);
/// }
/// assert!(got.iter().all(|d| d.from == ReplicaId::new(0)));
/// ```
pub struct TcpCluster {
    n: usize,
    protocol: ProtocolTag,
    start: Instant,
    /// `rings[from][to]`; the diagonal is `None` (self-delivery is the
    /// harness's job, as with every transport).
    rings: Vec<Vec<Option<Arc<OutRing>>>>,
    /// Wakes the writer thread after an enqueue on any ring.
    notifier: Arc<Notifier>,
    inbound: Receiver<Delivery>,
    /// Deliveries popped from `inbound` ahead of a deadline cut.
    staged: VecDeque<Delivery>,
    /// Frames accepted and pushed by reader threads (compared against
    /// `stats.messages` for idleness).
    received: Arc<AtomicU64>,
    /// Peer connections the reader threads lost (EOF, socket error, or a
    /// protocol violation) — surfaced through [`Transport::stats`] so a
    /// dropped peer is a counted event, not a silent thread exit.
    disconnects: Arc<AtomicU64>,
    delivered: u64,
    next_seq: u64,
    stats: NetworkStats,
    /// The endpoints' listeners, retained (non-blocking) after mesh
    /// construction: they double as the client gateway, with accepts and
    /// reads serviced by [`Transport::poll_clients`] on the run-loop
    /// thread — the gateway adds zero threads to the O(n) budget.
    listeners: Vec<TcpListener>,
    /// Accepted client connections by gateway-assigned id.
    clients: HashMap<u64, ClientConn>,
    next_conn: u64,
    /// One multiplexing reader per endpoint.
    readers: Vec<JoinHandle<()>>,
    /// The single writer thread draining every ring.
    writer: Option<JoinHandle<()>>,
    /// Frame-level counters; no-op until [`set_recorder`](Self::set_recorder).
    recorder: SharedRecorder,
    /// The writer thread's view of the recorder (it is spawned before
    /// `set_recorder` can run, so it reads through this shared slot).
    flush_recorder: Arc<Mutex<SharedRecorder>>,
}

impl TcpCluster {
    /// Binds `n` endpoints on `127.0.0.1` ephemeral ports, connects the
    /// full mesh, and spawns the writer and per-endpoint reader threads
    /// (`n + 1` threads total). Frames not tagged `protocol` are
    /// rejected at the readers.
    ///
    /// # Errors
    ///
    /// Returns any socket error raised while binding, accepting, or
    /// connecting the mesh.
    pub fn loopback(n: usize, protocol: ProtocolTag) -> io::Result<Self> {
        assert!(n >= 1, "a cluster needs at least one replica");
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<io::Result<_>>()?;

        let (inbound_tx, inbound) = mpsc::channel::<Delivery>();
        let received = Arc::new(AtomicU64::new(0));
        let disconnects = Arc::new(AtomicU64::new(0));

        // Connect the mesh: for each ordered pair (from → to), `from`
        // dials `to`'s listener and immediately sends a one-frame hello
        // naming itself, so the acceptor can attribute the connection.
        // Accepting inline (rather than in a background acceptor) keeps
        // construction deterministic and turns connection failures into
        // immediate errors.
        let mut rings: Vec<Vec<Option<Arc<OutRing>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut writer_conns: Vec<WriterConn> = Vec::with_capacity(n * n.saturating_sub(1));
        let mut accepted_by: Vec<Vec<TcpStream>> = (0..n).map(|_| Vec::new()).collect();
        for (from, row) in rings.iter_mut().enumerate() {
            for (to, accepted_row) in accepted_by.iter_mut().enumerate() {
                if from == to {
                    continue;
                }
                let mut stream = TcpStream::connect(addrs[to])?;
                stream.set_nodelay(true)?;
                let hello = Envelope::to_peer(
                    ReplicaId::new(from as u16),
                    ReplicaId::new(to as u16),
                    protocol,
                    Vec::new(),
                )
                .to_frame();
                stream.write_all(&hello)?;
                stream.set_nonblocking(true)?;

                let ring = OutRing::new();
                writer_conns.push(WriterConn {
                    stream,
                    ring: Arc::clone(&ring),
                });
                row[to] = Some(ring);

                let (accepted, _) = listeners[to].accept()?;
                accepted.set_nodelay(true)?;
                accepted.set_nonblocking(true)?;
                accepted_row.push(accepted);
            }
        }
        let mut readers = Vec::with_capacity(n);
        for (owner, streams) in accepted_by.into_iter().enumerate() {
            if streams.is_empty() {
                continue; // n = 1: no peers, no reader
            }
            let owner = ReplicaId::new(owner as u16);
            let inbound_tx = inbound_tx.clone();
            let received = Arc::clone(&received);
            let disconnects = Arc::clone(&disconnects);
            readers.push(
                std::thread::Builder::new()
                    .name(format!("sft-tcp-reader-{}", owner.as_u16()))
                    .spawn(move || {
                        endpoint_reader_loop(
                            streams,
                            owner,
                            protocol,
                            inbound_tx,
                            received,
                            disconnects,
                        );
                    })?,
            );
        }
        drop(inbound_tx);

        let notifier = Notifier::new();
        let flush_recorder = Arc::new(Mutex::new(sft_obs::noop()));
        let writer = std::thread::Builder::new()
            .name("sft-tcp-writer".into())
            .spawn({
                let notifier = Arc::clone(&notifier);
                let flush_recorder = Arc::clone(&flush_recorder);
                move || flush_loop(writer_conns, &notifier, &flush_recorder)
            })?;

        // The mesh is fully connected; from here on the listeners serve
        // clients only, polled non-blocking from the run-loop thread.
        for listener in &listeners {
            listener.set_nonblocking(true)?;
        }

        Ok(Self {
            n,
            protocol,
            start: Instant::now(),
            rings,
            notifier,
            inbound,
            staged: VecDeque::new(),
            received,
            disconnects,
            delivered: 0,
            next_seq: 0,
            stats: NetworkStats::default(),
            listeners,
            clients: HashMap::new(),
            next_conn: 0,
            readers,
            writer: Some(writer),
            recorder: sft_obs::noop(),
            flush_recorder,
        })
    }

    /// The socket address clients dial to reach `replica`'s gateway —
    /// the same listener the mesh was accepted on.
    ///
    /// # Errors
    ///
    /// Returns any socket error raised while reading the local address.
    pub fn client_addr(&self, replica: ReplicaId) -> io::Result<SocketAddr> {
        self.listeners[replica.as_usize()].local_addr()
    }

    /// Installs a live recorder: every enqueued frame counts into
    /// `net_frames_sent` / `net_frame_bytes`, and every writer pass that
    /// moved bytes times itself into `phase_net_flush_ns`.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        *self.flush_recorder.lock().expect("recorder slot") = recorder.clone();
        self.recorder = recorder;
    }

    /// A hook that wakes the writer thread — hand this to the
    /// group-commit WAL so a completed fsync releases durability-gated
    /// frames immediately instead of on the writer's next timed retry.
    pub fn writer_wake_hook(&self) -> Box<dyn Fn() + Send + Sync> {
        let notifier = Arc::clone(&self.notifier);
        Box::new(move || notifier.signal())
    }

    /// Enqueues one pre-framed buffer on the `from → to` ring.
    fn enqueue(&mut self, from: ReplicaId, to: ReplicaId, frame: Arc<[u8]>, payload_len: usize) {
        self.enqueue_gated(from, to, frame, payload_len, None);
    }

    /// [`enqueue`](Self::enqueue) with an optional durability gate the
    /// writer thread honors before flushing the frame.
    fn enqueue_gated(
        &mut self,
        from: ReplicaId,
        to: ReplicaId,
        frame: Arc<[u8]>,
        payload_len: usize,
        gate: Option<SendGate>,
    ) {
        self.stats.messages += 1;
        self.stats.bytes += payload_len as u64;
        if self.recorder.enabled() {
            self.recorder.add(names::NET_FRAMES_SENT, 1);
            self.recorder
                .add(names::NET_FRAME_BYTES, frame.len() as u64);
        }
        // A severed link counts like a network drop, as does a ring
        // whose connection died. A full ring blocks the sender until the
        // writer drains it: that is this transport's backpressure.
        let Some(ring) = self.rings[from.as_usize()][to.as_usize()].as_ref() else {
            self.stats.dropped += 1;
            return;
        };
        if ring.push_blocking_gated(frame, gate) {
            self.notifier.signal();
        } else {
            self.stats.dropped += 1;
        }
    }

    /// Severs the `from → to` connection — what the receiving endpoint
    /// observes when the sender's process dies. The writer drains any
    /// queued frames, shuts the socket down, the receiver's reader EOFs
    /// and counts a disconnect in [`Transport::stats`]; later sends on
    /// the severed link count as drops.
    pub fn sever(&mut self, from: ReplicaId, to: ReplicaId) {
        if let Some(ring) = self.rings[from.as_usize()][to.as_usize()].take() {
            ring.close();
            self.notifier.signal();
        }
    }

    /// Stamps a popped delivery with arrival order.
    fn stage(&mut self, mut delivery: Delivery) {
        delivery.seq = self.next_seq;
        self.next_seq += 1;
        self.staged.push_back(delivery);
    }
}

impl Transport for TcpCluster {
    fn replica_count(&self) -> usize {
        self.n
    }

    fn send(&mut self, from: ReplicaId, to: ReplicaId, payload: Arc<[u8]>) {
        let env = Envelope::to_peer(from, to, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        self.enqueue(from, to, frame, payload.len());
    }

    fn broadcast(&mut self, from: ReplicaId, payload: Arc<[u8]>) {
        let env = Envelope::broadcast(from, self.protocol, Arc::clone(&payload));
        // One encoding, one frame, n − 1 reference-counted enqueues.
        let frame: Arc<[u8]> = env.to_frame().into();
        for to in 0..self.n as u16 {
            let to = ReplicaId::new(to);
            if to != from {
                self.enqueue(from, to, Arc::clone(&frame), payload.len());
            }
        }
    }

    fn supports_gating(&self) -> bool {
        true // gated frames enqueue instantly; the writer thread waits
    }

    fn send_gated(&mut self, from: ReplicaId, to: ReplicaId, payload: Arc<[u8]>, gate: SendGate) {
        let env = Envelope::to_peer(from, to, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        self.enqueue_gated(from, to, frame, payload.len(), Some(gate));
    }

    fn broadcast_gated(&mut self, from: ReplicaId, payload: Arc<[u8]>, gate: SendGate) {
        let env = Envelope::broadcast(from, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        for to in 0..self.n as u16 {
            let to = ReplicaId::new(to);
            if to != from {
                self.enqueue_gated(
                    from,
                    to,
                    Arc::clone(&frame),
                    payload.len(),
                    Some(gate.clone()),
                );
            }
        }
    }

    fn poll_deliver(&mut self, deadline: SimTime) -> Vec<Delivery> {
        // Drain whatever already arrived.
        while let Ok(d) = self.inbound.try_recv() {
            self.stage(d);
        }
        // Nothing yet: block until the first arrival or the deadline.
        if self.staged.is_empty() {
            let now = self.now();
            if deadline > now {
                let wait = Duration::from_micros((deadline - now).as_micros());
                match self.inbound.recv_timeout(wait) {
                    Ok(d) => {
                        self.stage(d);
                        // Collect anything that arrived in the same burst.
                        while let Ok(more) = self.inbound.try_recv() {
                            self.stage(more);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
                }
            }
        }
        let now = self.now();
        let out: Vec<Delivery> = self
            .staged
            .drain(..)
            .map(|mut d| {
                d.deliver_at = now;
                d
            })
            .collect();
        self.delivered += out.len() as u64;
        out
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn next_deliver_at(&self) -> Option<SimTime> {
        None
    }

    fn is_idle(&self) -> bool {
        // Everything sent has been received by a reader *and* popped by
        // the run loop. Exact on loopback, where frames are never lost.
        self.staged.is_empty()
            && self.delivered + self.stats.dropped >= self.stats.messages
            && self.received.load(Ordering::SeqCst) + self.stats.dropped >= self.stats.messages
    }

    fn stats(&self) -> NetworkStats {
        let mut stats = self.stats;
        stats.disconnects = self.disconnects.load(Ordering::SeqCst);
        stats
    }

    fn poll_clients(&mut self) -> Vec<ClientDelivery> {
        // Accept whoever dialed since the last poll.
        for (replica, listener) in self.listeners.iter().enumerate() {
            let replica = ReplicaId::new(replica as u16);
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if stream.set_nodelay(true).is_err()
                            || stream.set_nonblocking(true).is_err()
                        {
                            continue; // died before it said anything
                        }
                        let conn = self.next_conn;
                        self.next_conn += 1;
                        self.clients.insert(
                            conn,
                            ClientConn {
                                stream,
                                decoder: FrameDecoder::new(replica, ProtocolTag::Client),
                                replica,
                                unsent: VecDeque::new(),
                            },
                        );
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        // Service every connection: retry pushed-back acks, then read.
        let mut out = Vec::new();
        let mut chunk = vec![0u8; 64 * 1024];
        let mut decoded = Vec::new();
        self.clients.retain(|&conn, client| {
            if !flush_client(client) {
                return false;
            }
            loop {
                match client.stream.read(&mut chunk) {
                    Ok(0) => return false, // client hung up
                    Ok(read) => {
                        if client.decoder.ingest(&chunk[..read], &mut decoded).is_err() {
                            decoded.clear();
                            return false; // protocol violation
                        }
                        for delivery in decoded.drain(..) {
                            out.push(ClientDelivery {
                                conn,
                                replica: client.replica,
                                payload: delivery.payload,
                            });
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return false,
                }
            }
        });
        out
    }

    fn send_client(&mut self, conn: u64, replica: ReplicaId, payload: Arc<[u8]>) {
        let Some(client) = self.clients.get_mut(&conn) else {
            return; // connection gone; clients own retries
        };
        // Address the ack to the identity the client's hello claimed.
        let Some(dest) = client.decoder.src() else {
            return; // never said hello, nothing to address
        };
        let frame = Envelope::to_peer(replica, dest, ProtocolTag::Client, payload).to_frame();
        client.unsent.extend(frame);
        if !flush_client(client) {
            self.clients.remove(&conn);
        }
    }
}

/// Pushes a client connection's queued ack bytes at its non-blocking
/// socket. Returns false when the connection is dead.
fn flush_client(client: &mut ClientConn) -> bool {
    while !client.unsent.is_empty() {
        let (head, _) = client.unsent.as_slices();
        match client.stream.write(head) {
            Ok(0) => return false,
            Ok(wrote) => {
                client.unsent.drain(..wrote);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        // Closing every ring ends the writer loop (it drains, shuts the
        // sockets down, and exits), which EOFs the readers.
        for row in std::mem::take(&mut self.rings) {
            for ring in row.into_iter().flatten() {
                ring.close();
            }
        }
        self.notifier.signal();
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
        for reader in std::mem::take(&mut self.readers) {
            let _ = reader.join();
        }
    }
}

/// The cluster's single writer: round-robins every connection, flushing
/// its ring onto the non-blocking socket. Sleeps on the notifier while
/// the mesh is quiet (with a short timeout while some kernel buffer is
/// pushing back), exits once every connection is done or dead. Each
/// pass that moved bytes records itself as `phase_net_flush_ns`.
fn flush_loop(mut conns: Vec<WriterConn>, notifier: &Notifier, recorder: &Mutex<SharedRecorder>) {
    loop {
        let recorder = recorder.lock().expect("recorder slot").clone();
        let flush = PhaseTimer::start(&*recorder);
        let mut wrote = false;
        let mut blocked = false;
        conns.retain_mut(|conn| {
            let (moved, status) = conn.ring.flush_nonblocking(&mut conn.stream);
            wrote |= moved;
            match status {
                Flush::Clean => true,
                Flush::Blocked => {
                    blocked = true;
                    true
                }
                Flush::Done => {
                    let _ = conn.stream.shutdown(Shutdown::Write);
                    false
                }
                Flush::Dead => {
                    // Later sends on this ring fail and count as drops.
                    conn.ring.close();
                    false
                }
            }
        });
        if wrote {
            flush.finish(&*recorder, names::PHASE_NET_FLUSH_NS);
        }
        // Exit *before* waiting: the signal that announced the last
        // ring's close was consumed by the pass that just drained it,
        // and no further signal will ever arrive.
        if conns.is_empty() {
            return;
        }
        notifier.wait(blocked.then_some(FLUSH_RETRY));
    }
}

/// One endpoint's reader: multiplexes all its accepted connections with
/// non-blocking reads into per-connection [`FrameDecoder`]s, pushing
/// validated deliveries into the shared inbound queue. Every connection
/// lost — EOF, socket error, or protocol violation — bumps
/// `disconnects`, so a dropped peer is observable in [`NetworkStats`]
/// instead of vanishing silently. While every connection is quiet the
/// poll sleep doubles from [`READ_IDLE_MIN`] to [`READ_IDLE_MAX`].
fn endpoint_reader_loop(
    streams: Vec<TcpStream>,
    owner: ReplicaId,
    protocol: ProtocolTag,
    inbound: Sender<Delivery>,
    received: Arc<AtomicU64>,
    disconnects: Arc<AtomicU64>,
) {
    let mut conns: Vec<Option<(TcpStream, FrameDecoder)>> = streams
        .into_iter()
        .map(|s| Some((s, FrameDecoder::new(owner, protocol))))
        .collect();
    let mut chunk = vec![0u8; 64 * 1024];
    let mut decoded = Vec::new();
    let mut idle = READ_IDLE_MIN;
    loop {
        let mut progressed = false;
        let mut live = 0usize;
        for slot in &mut conns {
            let Some((stream, decoder)) = slot.as_mut() else {
                continue;
            };
            match stream.read(&mut chunk) {
                Ok(0) => {
                    disconnects.fetch_add(1, Ordering::SeqCst);
                    *slot = None;
                }
                Ok(read) => {
                    progressed = true;
                    if decoder.ingest(&chunk[..read], &mut decoded).is_err() {
                        disconnects.fetch_add(1, Ordering::SeqCst);
                        *slot = None;
                        decoded.clear();
                        continue;
                    }
                    for delivery in decoded.drain(..) {
                        received.fetch_add(1, Ordering::SeqCst);
                        if inbound.send(delivery).is_err() {
                            return; // cluster gone
                        }
                    }
                    live += 1;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::Interrupted =>
                {
                    live += 1;
                }
                Err(_) => {
                    disconnects.fetch_add(1, Ordering::SeqCst);
                    *slot = None;
                }
            }
        }
        if live == 0 {
            return; // every connection closed
        }
        if progressed {
            idle = READ_IDLE_MIN;
        } else {
            std::thread::sleep(idle);
            idle = (idle * 2).min(READ_IDLE_MAX);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::SimDuration;

    fn collect(cluster: &mut TcpCluster, want: usize) -> Vec<Delivery> {
        let deadline = cluster.now() + SimDuration::from_secs(10);
        let mut got = Vec::new();
        while got.len() < want && cluster.now() < deadline {
            got.extend(cluster.poll_deliver(cluster.now() + SimDuration::from_millis(50)));
        }
        got
    }

    #[test]
    fn broadcast_reaches_every_other_endpoint() {
        let mut cluster = TcpCluster::loopback(4, ProtocolTag::Streamlet).unwrap();
        let payload: Arc<[u8]> = vec![0xab, 0xcd].into();
        cluster.broadcast(ReplicaId::new(2), Arc::clone(&payload));
        let got = collect(&mut cluster, 3);
        let mut to: Vec<u16> = got.iter().map(|d| d.to.as_u16()).collect();
        to.sort_unstable();
        assert_eq!(to, vec![0, 1, 3]);
        assert!(got.iter().all(|d| d.from == ReplicaId::new(2)));
        assert!(got.iter().all(|d| d.payload[..] == payload[..]));
        assert_eq!(
            cluster.stats(),
            NetworkStats {
                messages: 3,
                bytes: 6,
                dropped: 0,
                disconnects: 0
            },
            "byte accounting matches the simulator's per-recipient charge"
        );
        assert!(cluster.is_idle());
    }

    #[test]
    fn point_to_point_sends_reach_exactly_one_peer() {
        let mut cluster = TcpCluster::loopback(3, ProtocolTag::Fbft).unwrap();
        cluster.send(ReplicaId::new(0), ReplicaId::new(2), vec![1].into());
        cluster.send(ReplicaId::new(1), ReplicaId::new(0), vec![2].into());
        let got = collect(&mut cluster, 2);
        assert_eq!(got.len(), 2);
        let pair: std::collections::HashSet<(u16, u16)> = got
            .iter()
            .map(|d| (d.from.as_u16(), d.to.as_u16()))
            .collect();
        assert!(pair.contains(&(0, 2)));
        assert!(pair.contains(&(1, 0)));
    }

    #[test]
    fn poll_returns_empty_after_a_quiet_deadline() {
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        let before = cluster.now();
        let out = cluster.poll_deliver(before + SimDuration::from_millis(20));
        assert!(out.is_empty());
        assert!(cluster.now() >= before + SimDuration::from_millis(15));
        assert!(cluster.is_idle());
    }

    #[test]
    fn severed_connection_is_a_counted_disconnect() {
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        assert_eq!(cluster.stats().disconnects, 0);
        cluster.sever(ReplicaId::new(0), ReplicaId::new(1));
        // The reader notices the EOF asynchronously; wait for the count.
        let deadline = Instant::now() + Duration::from_secs(5);
        while cluster.stats().disconnects == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            cluster.stats().disconnects,
            1,
            "a dropped peer is a counted event, not a silent reader exit"
        );
        // Traffic toward the severed link degrades to counted drops.
        cluster.send(ReplicaId::new(0), ReplicaId::new(1), vec![9].into());
        assert_eq!(cluster.stats().dropped, 1);
    }

    #[test]
    fn deliveries_are_stamped_with_arrival_order() {
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        for i in 0..5u8 {
            cluster.send(ReplicaId::new(0), ReplicaId::new(1), vec![i].into());
        }
        let got = collect(&mut cluster, 5);
        // One connection: TCP preserves order, and seqs are monotone.
        let payloads: Vec<u8> = got.iter().map(|d| d.payload[0]).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    /// Polls the gateway until it yields something or `secs` elapse.
    fn poll_clients_until(cluster: &mut TcpCluster, secs: u64) -> Vec<ClientDelivery> {
        let deadline = Instant::now() + Duration::from_secs(secs);
        loop {
            let got = cluster.poll_clients();
            if !got.is_empty() || Instant::now() >= deadline {
                return got;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn client_gateway_routes_requests_in_and_acks_back() {
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        let replica = ReplicaId::new(1);
        let mut sock = TcpStream::connect(cluster.client_addr(replica).unwrap()).unwrap();
        sock.set_nodelay(true).unwrap();
        // A client identity is just the u16 its hello claims — it shares
        // the namespace with nothing (client frames never reach engines).
        let me = ReplicaId::new(77);
        let hello = Envelope::to_peer(me, replica, ProtocolTag::Client, Vec::new()).to_frame();
        sock.write_all(&hello).unwrap();
        let request = vec![0xAA, 0xBB, 0xCC];
        let frame = Envelope::to_peer(me, replica, ProtocolTag::Client, request.clone()).to_frame();
        sock.write_all(&frame).unwrap();

        let got = poll_clients_until(&mut cluster, 5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].replica, replica);
        assert_eq!(got[0].payload[..], request[..]);

        cluster.send_client(got[0].conn, replica, vec![0x5e].into());
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = Vec::new();
        let mut tmp = [0u8; 1024];
        let env = loop {
            let n = sock.read(&mut tmp).expect("ack within the timeout");
            assert!(n > 0, "gateway closed instead of acking");
            buf.extend_from_slice(&tmp[..n]);
            if let Some((env, _)) = Envelope::decode_frame(&buf).unwrap() {
                break env;
            }
        };
        assert_eq!(env.src, replica);
        assert_eq!(env.protocol, ProtocolTag::Client);
        assert_eq!(
            env.payload[..],
            [0x5e],
            "ack addressed back to the claimant"
        );
        // Replica traffic and client traffic never mix queues.
        assert!(cluster.is_idle());
    }

    #[test]
    fn client_speaking_a_replica_protocol_is_disconnected() {
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        let replica = ReplicaId::new(0);
        let mut sock = TcpStream::connect(cluster.client_addr(replica).unwrap()).unwrap();
        // Consensus-tagged frames through the client door are a
        // violation: the gateway must never forward them to an engine.
        let bogus =
            Envelope::to_peer(ReplicaId::new(9), replica, ProtocolTag::Fbft, vec![1]).to_frame();
        sock.write_all(&bogus).unwrap();
        let got = poll_clients_until(&mut cluster, 2);
        assert!(got.is_empty(), "violating frames yield no deliveries");
        sock.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut tmp = [0u8; 16];
        assert_eq!(sock.read(&mut tmp).unwrap(), 0, "gateway hung up");
    }

    #[test]
    fn acks_to_a_departed_client_are_dropped_not_fatal() {
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        let replica = ReplicaId::new(0);
        {
            let mut sock = TcpStream::connect(cluster.client_addr(replica).unwrap()).unwrap();
            let hello =
                Envelope::to_peer(ReplicaId::new(5), replica, ProtocolTag::Client, Vec::new())
                    .to_frame();
            sock.write_all(&hello).unwrap();
            let frame = Envelope::to_peer(ReplicaId::new(5), replica, ProtocolTag::Client, vec![7])
                .to_frame();
            sock.write_all(&frame).unwrap();
            let got = poll_clients_until(&mut cluster, 5);
            assert_eq!(got.len(), 1);
            // Socket drops here.
        }
        // The conn id may briefly outlive the socket; both the stale-id
        // and the already-reaped paths must be silent no-ops.
        cluster.send_client(0, replica, vec![1].into());
        cluster.poll_clients();
        cluster.send_client(0, replica, vec![2].into());
        cluster.send_client(999, replica, vec![3].into());
    }

    #[test]
    fn frames_larger_than_socket_buffers_arrive_whole() {
        // A payload far beyond the loopback kernel buffer forces the
        // writer through its partial-write path (WouldBlock mid-frame,
        // cursor resume on a later pass).
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        let payload: Arc<[u8]> = vec![0x5a; 8 * 1024 * 1024].into();
        cluster.send(ReplicaId::new(1), ReplicaId::new(0), Arc::clone(&payload));
        let got = collect(&mut cluster, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload.len(), payload.len());
        assert!(got[0].payload[..] == payload[..], "no bytes torn");
    }
}
