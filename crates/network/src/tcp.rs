//! Real-socket transport: a loopback TCP mesh speaking length-prefixed
//! [`Envelope`] frames.
//!
//! Hand-rolled on `std::net` + threads + channels — the build environment
//! has no registry access, so there is no async runtime to lean on, and
//! none is needed: the FeBFT shape (typed envelopes consumed from an
//! executor-agnostic transport) works just as well over blocking sockets.
//!
//! ## Architecture
//!
//! A [`TcpCluster`] hosts `n` replica endpoints in one process, connected
//! full-mesh over `127.0.0.1` ephemeral ports:
//!
//! - every ordered pair `(i → j)` gets its own TCP connection;
//! - each connection has a dedicated **writer thread** fed by a channel,
//!   so a slow peer can never block the consensus loop — and a broadcast
//!   enqueues one shared pre-framed buffer on `n − 1` writers (encode
//!   once, `Arc` fan-out, exactly like the simulator);
//! - each endpoint's accepted connections get **reader threads** that
//!   decode frames incrementally and push [`Delivery`]s into one
//!   **shared inbound queue** the run loop polls.
//!
//! Frames that fail to decode, carry the wrong [`ProtocolTag`], or name a
//! `Dest::Peer` other than the receiving endpoint terminate that reader —
//! a transport does not forward bytes it cannot vouch for.
//!
//! ## Time
//!
//! The [`Transport`] time source is wall-clock microseconds since cluster
//! construction, expressed as [`SimTime`] — engines built for the
//! simulator run unchanged; only the meaning of a microsecond differs.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sft_obs::{names, SharedRecorder};
use sft_types::{Dest, Envelope, ProtocolTag, ReplicaId, SimTime};

use crate::{Delivery, NetworkStats, Transport};

/// Per-connection writer queue depth. Deep enough that a whole burst of
/// pipelined rounds never blocks the consensus loop; bounded so a dead
/// peer eventually exerts backpressure instead of unbounded memory growth.
const WRITER_QUEUE_DEPTH: usize = 1024;

/// One outbound connection: the channel its writer thread drains.
struct PeerLink {
    frames: SyncSender<Arc<[u8]>>,
    writer: Option<JoinHandle<()>>,
}

/// An `n`-endpoint loopback TCP mesh implementing [`Transport`]. See the
/// [module docs](self) for the thread and framing architecture.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use sft_network::{ProtocolTag, TcpCluster, Transport};
/// use sft_types::{ReplicaId, SimDuration};
///
/// let mut cluster = TcpCluster::loopback(3, ProtocolTag::Fbft).unwrap();
/// let payload: Arc<[u8]> = vec![1, 2, 3].into();
/// cluster.broadcast(ReplicaId::new(0), payload);
/// let deadline = cluster.now() + SimDuration::from_secs(5);
/// let mut got = Vec::new();
/// while got.len() < 2 {
///     let batch = cluster.poll_deliver(deadline);
///     assert!(!batch.is_empty(), "loopback delivery within the deadline");
///     got.extend(batch);
/// }
/// assert!(got.iter().all(|d| d.from == ReplicaId::new(0)));
/// ```
pub struct TcpCluster {
    n: usize,
    protocol: ProtocolTag,
    start: Instant,
    /// `links[from][to]`; the diagonal is `None` (self-delivery is the
    /// harness's job, as with every transport).
    links: Vec<Vec<Option<PeerLink>>>,
    inbound: Receiver<Delivery>,
    /// Deliveries popped from `inbound` ahead of a deadline cut.
    staged: VecDeque<Delivery>,
    /// Frames accepted and pushed by reader threads (compared against
    /// `stats.messages` for idleness).
    received: Arc<AtomicU64>,
    /// Peer connections the reader threads lost (EOF, socket error, or a
    /// protocol violation) — surfaced through [`Transport::stats`] so a
    /// dropped peer is a counted event, not a silent thread exit.
    disconnects: Arc<AtomicU64>,
    delivered: u64,
    next_seq: u64,
    stats: NetworkStats,
    readers: Vec<JoinHandle<()>>,
    /// Frame-level counters; no-op until [`set_recorder`](Self::set_recorder).
    recorder: SharedRecorder,
}

impl TcpCluster {
    /// Binds `n` endpoints on `127.0.0.1` ephemeral ports, connects the
    /// full mesh, and spawns the writer/reader threads. Frames not tagged
    /// `protocol` are rejected at the readers.
    ///
    /// # Errors
    ///
    /// Returns any socket error raised while binding, accepting, or
    /// connecting the mesh.
    pub fn loopback(n: usize, protocol: ProtocolTag) -> io::Result<Self> {
        assert!(n >= 1, "a cluster needs at least one replica");
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(TcpListener::local_addr)
            .collect::<io::Result<_>>()?;

        let (inbound_tx, inbound) = mpsc::channel::<Delivery>();
        let received = Arc::new(AtomicU64::new(0));
        let disconnects = Arc::new(AtomicU64::new(0));
        let mut readers = Vec::new();

        // Connect the mesh: for each ordered pair (from → to), `from`
        // dials `to`'s listener and immediately sends a one-frame hello
        // naming itself, so the acceptor can attribute the connection.
        let mut links: Vec<Vec<Option<PeerLink>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for (from, row) in links.iter_mut().enumerate() {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let mut stream = TcpStream::connect(addrs[to])?;
                stream.set_nodelay(true)?;
                let hello = Envelope::to_peer(
                    ReplicaId::new(from as u16),
                    ReplicaId::new(to as u16),
                    protocol,
                    Vec::new(),
                )
                .to_frame();
                stream.write_all(&hello)?;

                let (frames, rx) = mpsc::sync_channel::<Arc<[u8]>>(WRITER_QUEUE_DEPTH);
                let writer = std::thread::Builder::new()
                    .name(format!("sft-tcp-writer-{from}-{to}"))
                    .spawn(move || writer_loop(stream, rx))?;
                row[to] = Some(PeerLink {
                    frames,
                    writer: Some(writer),
                });

                // Accept the connection on `to`'s side and hand it to a
                // reader. Accepting inline (rather than in a background
                // acceptor) keeps construction deterministic and turns
                // connection failures into immediate errors.
                let (accepted, _) = listeners[to].accept()?;
                accepted.set_nodelay(true)?;
                let reader = spawn_reader(
                    accepted,
                    ReplicaId::new(to as u16),
                    protocol,
                    inbound_tx.clone(),
                    Arc::clone(&received),
                    Arc::clone(&disconnects),
                )?;
                readers.push(reader);
            }
        }
        drop(inbound_tx);

        Ok(Self {
            n,
            protocol,
            start: Instant::now(),
            links,
            inbound,
            staged: VecDeque::new(),
            received,
            disconnects,
            delivered: 0,
            next_seq: 0,
            stats: NetworkStats::default(),
            readers,
            recorder: sft_obs::noop(),
        })
    }

    /// Installs a live recorder: every enqueued frame counts into
    /// `net_frames_sent` / `net_frame_bytes`.
    pub fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = recorder;
    }

    /// Enqueues one pre-framed buffer on the `from → to` writer.
    fn enqueue(&mut self, from: ReplicaId, to: ReplicaId, frame: Arc<[u8]>, payload_len: usize) {
        self.stats.messages += 1;
        self.stats.bytes += payload_len as u64;
        if self.recorder.enabled() {
            self.recorder.add(names::NET_FRAMES_SENT, 1);
            self.recorder
                .add(names::NET_FRAME_BYTES, frame.len() as u64);
        }
        // A severed link counts like a network drop, as does a
        // disconnected channel. A full queue means the peer stopped
        // draining (dead writer): the blocking send is this transport's
        // backpressure.
        let Some(link) = self.links[from.as_usize()][to.as_usize()].as_ref() else {
            self.stats.dropped += 1;
            return;
        };
        if link.frames.send(frame).is_err() {
            self.stats.dropped += 1;
        }
    }

    /// Severs the `from → to` connection — what the receiving endpoint
    /// observes when the sender's process dies. Its reader EOFs and counts
    /// a disconnect in [`Transport::stats`]; later sends on the severed
    /// link count as drops.
    pub fn sever(&mut self, from: ReplicaId, to: ReplicaId) {
        if let Some(link) = self.links[from.as_usize()][to.as_usize()].take() {
            drop(link.frames);
            if let Some(handle) = link.writer {
                let _ = handle.join();
            }
        }
    }

    /// Stamps a popped delivery with arrival order.
    fn stage(&mut self, mut delivery: Delivery) {
        delivery.seq = self.next_seq;
        self.next_seq += 1;
        self.staged.push_back(delivery);
    }
}

impl Transport for TcpCluster {
    fn replica_count(&self) -> usize {
        self.n
    }

    fn send(&mut self, from: ReplicaId, to: ReplicaId, payload: Arc<[u8]>) {
        let env = Envelope::to_peer(from, to, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        self.enqueue(from, to, frame, payload.len());
    }

    fn broadcast(&mut self, from: ReplicaId, payload: Arc<[u8]>) {
        let env = Envelope::broadcast(from, self.protocol, Arc::clone(&payload));
        // One encoding, one frame, n − 1 reference-counted enqueues.
        let frame: Arc<[u8]> = env.to_frame().into();
        for to in 0..self.n as u16 {
            let to = ReplicaId::new(to);
            if to != from {
                self.enqueue(from, to, Arc::clone(&frame), payload.len());
            }
        }
    }

    fn poll_deliver(&mut self, deadline: SimTime) -> Vec<Delivery> {
        // Drain whatever already arrived.
        while let Ok(d) = self.inbound.try_recv() {
            self.stage(d);
        }
        // Nothing yet: block until the first arrival or the deadline.
        if self.staged.is_empty() {
            let now = self.now();
            if deadline > now {
                let wait = Duration::from_micros((deadline - now).as_micros());
                match self.inbound.recv_timeout(wait) {
                    Ok(d) => {
                        self.stage(d);
                        // Collect anything that arrived in the same burst.
                        while let Ok(more) = self.inbound.try_recv() {
                            self.stage(more);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
                }
            }
        }
        let now = self.now();
        let out: Vec<Delivery> = self
            .staged
            .drain(..)
            .map(|mut d| {
                d.deliver_at = now;
                d
            })
            .collect();
        self.delivered += out.len() as u64;
        out
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn next_deliver_at(&self) -> Option<SimTime> {
        None
    }

    fn is_idle(&self) -> bool {
        // Everything sent has been received by a reader *and* popped by
        // the run loop. Exact on loopback, where frames are never lost.
        self.staged.is_empty()
            && self.delivered + self.stats.dropped >= self.stats.messages
            && self.received.load(Ordering::SeqCst) + self.stats.dropped >= self.stats.messages
    }

    fn stats(&self) -> NetworkStats {
        let mut stats = self.stats;
        stats.disconnects = self.disconnects.load(Ordering::SeqCst);
        stats
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        // Closing the writer channels ends the writer loops, which closes
        // the sockets, which EOFs the readers.
        for row in std::mem::take(&mut self.links) {
            for link in row.into_iter().flatten() {
                drop(link.frames);
                if let Some(handle) = link.writer {
                    let _ = handle.join();
                }
            }
        }
        for reader in std::mem::take(&mut self.readers) {
            let _ = reader.join();
        }
    }
}

/// Writer loop: frames off the channel, bytes onto the socket. Exits when
/// the channel closes (cluster drop) or the socket breaks (peer gone).
fn writer_loop(mut stream: TcpStream, frames: Receiver<Arc<[u8]>>) {
    while let Ok(frame) = frames.recv() {
        if stream.write_all(&frame).is_err() {
            break;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
}

/// Spawns the reader for one accepted connection: decodes frames
/// incrementally, validates the hello, tag, and destination, and pushes
/// deliveries for `owner` into the shared queue. Every reader exit — EOF,
/// socket error, or protocol violation — bumps `disconnects`, so a lost
/// peer is observable in [`NetworkStats`] instead of vanishing silently.
pub(crate) fn spawn_reader(
    stream: TcpStream,
    owner: ReplicaId,
    protocol: ProtocolTag,
    inbound: Sender<Delivery>,
    received: Arc<AtomicU64>,
    disconnects: Arc<AtomicU64>,
) -> io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("sft-tcp-reader-{}", owner.as_u16()))
        .spawn(move || {
            reader_loop(stream, owner, protocol, inbound, received);
            disconnects.fetch_add(1, Ordering::SeqCst);
        })
}

fn reader_loop(
    mut stream: TcpStream,
    owner: ReplicaId,
    protocol: ProtocolTag,
    inbound: Sender<Delivery>,
    received: Arc<AtomicU64>,
) {
    let mut buf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut chunk = [0u8; 64 * 1024];
    let mut claimed_src: Option<ReplicaId> = None;
    loop {
        // Decode every complete frame currently buffered.
        loop {
            match Envelope::decode_frame(&buf) {
                Ok(None) => break,
                Err(_) => return, // malformed stream: drop the connection
                Ok(Some((env, used))) => {
                    buf.drain(..used);
                    if env.protocol != protocol {
                        return; // wrong protocol family: refuse the peer
                    }
                    match env.dest {
                        Dest::Broadcast => {}
                        Dest::Peer(p) if p == owner => {}
                        Dest::Peer(_) => return, // misrouted: refuse
                    }
                    match claimed_src {
                        // First frame is the hello: it names the peer this
                        // connection speaks for and carries no payload.
                        None => {
                            claimed_src = Some(env.src);
                            continue;
                        }
                        // Later frames must keep the same source: one
                        // connection, one peer identity.
                        Some(src) if src != env.src => return,
                        Some(_) => {}
                    }
                    received.fetch_add(1, Ordering::SeqCst);
                    if inbound
                        .send(Delivery {
                            from: env.src,
                            to: owner,
                            payload: env.payload,
                            deliver_at: SimTime::ZERO, // stamped at poll
                            seq: 0,                    // stamped at poll
                        })
                        .is_err()
                    {
                        return; // cluster gone
                    }
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return, // EOF or error: peer closed
            Ok(read) => buf.extend_from_slice(&chunk[..read]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::SimDuration;

    fn collect(cluster: &mut TcpCluster, want: usize) -> Vec<Delivery> {
        let deadline = cluster.now() + SimDuration::from_secs(10);
        let mut got = Vec::new();
        while got.len() < want && cluster.now() < deadline {
            got.extend(cluster.poll_deliver(cluster.now() + SimDuration::from_millis(50)));
        }
        got
    }

    #[test]
    fn broadcast_reaches_every_other_endpoint() {
        let mut cluster = TcpCluster::loopback(4, ProtocolTag::Streamlet).unwrap();
        let payload: Arc<[u8]> = vec![0xab, 0xcd].into();
        cluster.broadcast(ReplicaId::new(2), Arc::clone(&payload));
        let got = collect(&mut cluster, 3);
        let mut to: Vec<u16> = got.iter().map(|d| d.to.as_u16()).collect();
        to.sort_unstable();
        assert_eq!(to, vec![0, 1, 3]);
        assert!(got.iter().all(|d| d.from == ReplicaId::new(2)));
        assert!(got.iter().all(|d| d.payload[..] == payload[..]));
        assert_eq!(
            cluster.stats(),
            NetworkStats {
                messages: 3,
                bytes: 6,
                dropped: 0,
                disconnects: 0
            },
            "byte accounting matches the simulator's per-recipient charge"
        );
        assert!(cluster.is_idle());
    }

    #[test]
    fn point_to_point_sends_reach_exactly_one_peer() {
        let mut cluster = TcpCluster::loopback(3, ProtocolTag::Fbft).unwrap();
        cluster.send(ReplicaId::new(0), ReplicaId::new(2), vec![1].into());
        cluster.send(ReplicaId::new(1), ReplicaId::new(0), vec![2].into());
        let got = collect(&mut cluster, 2);
        assert_eq!(got.len(), 2);
        let pair: std::collections::HashSet<(u16, u16)> = got
            .iter()
            .map(|d| (d.from.as_u16(), d.to.as_u16()))
            .collect();
        assert!(pair.contains(&(0, 2)));
        assert!(pair.contains(&(1, 0)));
    }

    #[test]
    fn poll_returns_empty_after_a_quiet_deadline() {
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        let before = cluster.now();
        let out = cluster.poll_deliver(before + SimDuration::from_millis(20));
        assert!(out.is_empty());
        assert!(cluster.now() >= before + SimDuration::from_millis(15));
        assert!(cluster.is_idle());
    }

    #[test]
    fn severed_connection_is_a_counted_disconnect() {
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        assert_eq!(cluster.stats().disconnects, 0);
        cluster.sever(ReplicaId::new(0), ReplicaId::new(1));
        // The reader notices the EOF asynchronously; wait for the count.
        let deadline = Instant::now() + Duration::from_secs(5);
        while cluster.stats().disconnects == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            cluster.stats().disconnects,
            1,
            "a dropped peer is a counted event, not a silent reader exit"
        );
        // Traffic toward the severed link degrades to counted drops.
        cluster.send(ReplicaId::new(0), ReplicaId::new(1), vec![9].into());
        assert_eq!(cluster.stats().dropped, 1);
    }

    #[test]
    fn deliveries_are_stamped_with_arrival_order() {
        let mut cluster = TcpCluster::loopback(2, ProtocolTag::Fbft).unwrap();
        for i in 0..5u8 {
            cluster.send(ReplicaId::new(0), ReplicaId::new(1), vec![i].into());
        }
        let got = collect(&mut cluster, 5);
        // One connection: TCP preserves order, and seqs are monotone.
        let payloads: Vec<u8> = got.iter().map(|d| d.payload[0]).collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
        assert!(got.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
