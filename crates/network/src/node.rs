//! Single-endpoint socket transport for standalone replica processes.
//!
//! [`TcpCluster`](crate::TcpCluster) hosts all `n` endpoints in one
//! process and connects the mesh at construction — fine for tests, useless
//! for a real deployment where each replica is its own process that must
//! survive peers being down, crashing, and coming back. [`NodeTransport`]
//! is the per-process half of the same design:
//!
//! - one listener accepts inbound connections from any peer, attributing
//!   each by its hello frame (same validation as the cluster readers);
//! - one **reconnecting writer thread per peer** dials the peer's address
//!   with capped exponential backoff, re-dials (and re-sends the hello)
//!   whenever a write fails, and keeps draining its outbound ring (the
//!   same `OutRing` the cluster's writer flushes) in
//!   the meantime — so a peer's crash never wedges the consensus loop,
//!   and its restart is picked up without any coordination;
//! - every lost connection, inbound or outbound, is a counted
//!   [`disconnect`](crate::NetworkStats::disconnects), not a silent
//!   thread exit.
//!
//! The [`Transport`] surface is identical to the cluster's, so the same
//! generic engine loop drives a replica here — `sft-node` is that loop
//! plus a write-ahead log.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sft_obs::{names, SharedRecorder};
use sft_types::{Envelope, ProtocolTag, ReplicaId, SimTime};

use crate::frame::FrameDecoder;
use crate::outbox::OutRing;
use crate::{Delivery, NetworkStats, Transport};

/// First reconnect delay; doubles per failed attempt up to
/// [`BACKOFF_CAP`].
const BACKOFF_FLOOR: Duration = Duration::from_millis(50);

/// Ceiling on the reconnect backoff.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// One peer's outbound side: the ring its reconnecting writer drains.
/// The ring is bounded, so a long-dead peer costs a fixed amount of
/// memory; sends beyond the bound are counted drops (the peer will
/// block-sync what it missed, exactly as after a partition).
struct PeerOut {
    ring: Arc<OutRing>,
    writer: Option<JoinHandle<()>>,
}

/// One replica's view of the network: a listener for inbound peers and a
/// reconnecting writer per outbound peer. See the [module docs](self).
pub struct NodeTransport {
    id: ReplicaId,
    n: usize,
    protocol: ProtocolTag,
    start: Instant,
    /// Outbound side per replica id; the own-id slot is `None`
    /// (self-delivery is the harness's job, as with every transport).
    peers: Vec<Option<PeerOut>>,
    inbound: Receiver<Delivery>,
    staged: VecDeque<Delivery>,
    next_seq: u64,
    stats: NetworkStats,
    /// Connections lost, inbound readers and outbound writers combined.
    disconnects: Arc<AtomicU64>,
    /// Tells writer threads to stop reconnecting at shutdown.
    shutdown: Arc<AtomicBool>,
    /// The local listener's address (waking the acceptor at drop).
    listen_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    /// Frame-level counters (no-op unless bound observed); writer
    /// threads hold their own clones for reconnect/backoff accounting.
    recorder: SharedRecorder,
}

impl NodeTransport {
    /// Binds this replica's listener on `listen` and spawns a
    /// reconnecting writer toward every other entry of `peers` (the full
    /// address table, indexed by replica id, own entry included). Peers
    /// need not be up yet — and may go down and come back — connections
    /// are (re-)established in the background with capped exponential
    /// backoff.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for `peers` or fewer than two
    /// addresses are given.
    ///
    /// # Errors
    ///
    /// Returns any socket error raised while binding the listener or
    /// spawning threads.
    pub fn bind(
        id: ReplicaId,
        protocol: ProtocolTag,
        listen: SocketAddr,
        peers: &[SocketAddr],
    ) -> io::Result<Self> {
        Self::bind_observed(id, protocol, listen, peers, sft_obs::noop())
    }

    /// [`bind`](Self::bind) with a live metrics recorder: reconnect
    /// attempts and backoff sleeps surface as `net_reconnect_attempts` /
    /// `net_backoff_sleeps` / `net_backoff_sleep_ms` counters, and every
    /// enqueued frame as `net_frames_sent` / `net_frame_bytes`. The
    /// recorder must be given at bind time because the per-peer writer
    /// threads are spawned here.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for `peers` or fewer than two
    /// addresses are given.
    ///
    /// # Errors
    ///
    /// Returns any socket error raised while binding the listener or
    /// spawning threads.
    pub fn bind_observed(
        id: ReplicaId,
        protocol: ProtocolTag,
        listen: SocketAddr,
        peers: &[SocketAddr],
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let n = peers.len();
        assert!(n >= 2, "a replica set needs at least two members");
        assert!(id.as_usize() < n, "own id must index the address table");
        let listener = TcpListener::bind(listen)?;
        let listen_addr = listener.local_addr()?;

        let (inbound_tx, inbound) = mpsc::channel::<Delivery>();
        let received = Arc::new(AtomicU64::new(0));
        let disconnects = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));

        let acceptor = std::thread::Builder::new()
            .name(format!("sft-node-accept-{}", id.as_u16()))
            .spawn({
                let inbound_tx = inbound_tx.clone();
                let received = Arc::clone(&received);
                let disconnects = Arc::clone(&disconnects);
                let shutdown = Arc::clone(&shutdown);
                move || {
                    accept_loop(
                        listener,
                        id,
                        protocol,
                        inbound_tx,
                        received,
                        disconnects,
                        shutdown,
                    );
                }
            })?;

        let mut outs: Vec<Option<PeerOut>> = Vec::with_capacity(n);
        for (peer, addr) in peers.iter().enumerate() {
            if peer == id.as_usize() {
                outs.push(None);
                continue;
            }
            let hello =
                Envelope::to_peer(id, ReplicaId::new(peer as u16), protocol, Vec::new()).to_frame();
            let ring = OutRing::new();
            let writer = std::thread::Builder::new()
                .name(format!("sft-node-writer-{}-{peer}", id.as_u16()))
                .spawn({
                    let addr = *addr;
                    let ring = Arc::clone(&ring);
                    let disconnects = Arc::clone(&disconnects);
                    let shutdown = Arc::clone(&shutdown);
                    let recorder = Arc::clone(&recorder);
                    move || peer_writer_loop(addr, hello, &ring, &disconnects, &shutdown, &recorder)
                })?;
            outs.push(Some(PeerOut {
                ring,
                writer: Some(writer),
            }));
        }

        Ok(Self {
            id,
            n,
            protocol,
            start: Instant::now(),
            peers: outs,
            inbound,
            staged: VecDeque::new(),
            next_seq: 0,
            stats: NetworkStats::default(),
            disconnects,
            shutdown,
            listen_addr,
            acceptor: Some(acceptor),
            recorder,
        })
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The bound listener address (useful when `listen` used port 0).
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Re-anchors the transport clock at `origin` — a wall-clock instant
    /// shared by every process of the cluster (the deployment's genesis
    /// timestamp). [`now`](Transport::now) then reads the time elapsed
    /// since that shared instant (zero before it), so externally clocked
    /// protocols tick aligned epochs across processes regardless of when
    /// each one started — and a restarted replica resumes at the
    /// *cluster's* current epoch instead of replaying wall time from its
    /// own launch.
    #[must_use]
    pub fn with_time_origin(mut self, origin: std::time::SystemTime) -> Self {
        let now = Instant::now();
        self.start = match origin.elapsed() {
            // Anchor in the past: back-date the start by that much.
            Ok(past) => now.checked_sub(past).unwrap_or(now),
            // Anchor in the future: the clock reads zero until then.
            Err(ahead) => now + ahead.duration(),
        };
        self
    }

    /// Enqueues one pre-framed buffer toward `to`. A full or closed
    /// ring is a counted drop — the writer is down or hopelessly
    /// behind, and the peer will block-sync what it missed.
    fn enqueue(&mut self, to: ReplicaId, frame: Arc<[u8]>, payload_len: usize) {
        self.stats.messages += 1;
        self.stats.bytes += payload_len as u64;
        if self.recorder.enabled() {
            self.recorder.add(names::NET_FRAMES_SENT, 1);
            self.recorder
                .add(names::NET_FRAME_BYTES, frame.len() as u64);
        }
        let Some(peer) = self.peers[to.as_usize()].as_ref() else {
            self.stats.dropped += 1;
            return;
        };
        if !peer.ring.push(frame) {
            self.stats.dropped += 1;
        }
    }

    /// Stamps a popped delivery with arrival order.
    fn stage(&mut self, mut delivery: Delivery) {
        delivery.seq = self.next_seq;
        self.next_seq += 1;
        self.staged.push_back(delivery);
    }
}

impl Transport for NodeTransport {
    fn replica_count(&self) -> usize {
        self.n
    }

    fn send(&mut self, from: ReplicaId, to: ReplicaId, payload: Arc<[u8]>) {
        debug_assert_eq!(from, self.id, "a node only sends as itself");
        let env = Envelope::to_peer(from, to, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        self.enqueue(to, frame, payload.len());
    }

    fn broadcast(&mut self, from: ReplicaId, payload: Arc<[u8]>) {
        debug_assert_eq!(from, self.id, "a node only sends as itself");
        let env = Envelope::broadcast(from, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        for to in 0..self.n as u16 {
            let to = ReplicaId::new(to);
            if to != from {
                self.enqueue(to, Arc::clone(&frame), payload.len());
            }
        }
    }

    fn poll_deliver(&mut self, deadline: SimTime) -> Vec<Delivery> {
        while let Ok(d) = self.inbound.try_recv() {
            self.stage(d);
        }
        if self.staged.is_empty() {
            let now = self.now();
            if deadline > now {
                let wait = Duration::from_micros((deadline - now).as_micros());
                match self.inbound.recv_timeout(wait) {
                    Ok(d) => {
                        self.stage(d);
                        while let Ok(more) = self.inbound.try_recv() {
                            self.stage(more);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
                }
            }
        }
        let now = self.now();
        self.staged
            .drain(..)
            .map(|mut d| {
                d.deliver_at = now;
                d
            })
            .collect()
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn next_deliver_at(&self) -> Option<SimTime> {
        None
    }

    fn is_idle(&self) -> bool {
        // A lone endpoint cannot know what peers still have in flight;
        // "idle" is only "nothing locally staged".
        self.staged.is_empty()
    }

    fn stats(&self) -> NetworkStats {
        let mut stats = self.stats;
        stats.disconnects = self.disconnects.load(Ordering::SeqCst);
        stats
    }
}

impl Drop for NodeTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Closing the rings ends the writer loops once they drain.
        for peer in std::mem::take(&mut self.peers).into_iter().flatten() {
            peer.ring.close();
            if let Some(handle) = peer.writer {
                let _ = handle.join();
            }
        }
        // Wake the acceptor so it can observe the shutdown flag.
        let _ = TcpStream::connect(self.listen_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// Accepts inbound peer connections for `owner` until shutdown, handing
/// each to a detached blocking reader over the same validating
/// [`FrameDecoder`] the cluster's multiplexing readers use. Reader
/// threads exit on their own at EOF — each exit bumps `disconnects`.
fn accept_loop(
    listener: TcpListener,
    owner: ReplicaId,
    protocol: ProtocolTag,
    inbound: Sender<Delivery>,
    received: Arc<AtomicU64>,
    disconnects: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        let _ = std::thread::Builder::new()
            .name(format!("sft-node-reader-{}", owner.as_u16()))
            .spawn({
                let inbound = inbound.clone();
                let received = Arc::clone(&received);
                let disconnects = Arc::clone(&disconnects);
                move || {
                    reader_loop(stream, owner, protocol, &inbound, &received);
                    disconnects.fetch_add(1, Ordering::SeqCst);
                }
            });
    }
}

/// Blocking reader for one inbound connection: reads until EOF, error,
/// or protocol violation, pushing validated deliveries into the shared
/// inbound queue.
fn reader_loop(
    mut stream: TcpStream,
    owner: ReplicaId,
    protocol: ProtocolTag,
    inbound: &Sender<Delivery>,
    received: &AtomicU64,
) {
    let mut decoder = FrameDecoder::new(owner, protocol);
    let mut chunk = vec![0u8; 64 * 1024];
    let mut decoded = Vec::new();
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return, // EOF or error: peer closed
            Ok(read) => {
                if decoder.ingest(&chunk[..read], &mut decoded).is_err() {
                    return; // protocol violation: refuse the peer
                }
                for delivery in decoded.drain(..) {
                    received.fetch_add(1, Ordering::SeqCst);
                    if inbound.send(delivery).is_err() {
                        return; // transport gone
                    }
                }
            }
        }
    }
}

/// The reconnecting writer toward one peer: dials with capped exponential
/// backoff, leads every (re)connection with the hello frame, and re-dials
/// on any write failure — counting each lost connection. The ring is
/// drained peek-then-pop, so a frame that failed mid-write is retried
/// whole on the next connection. Exits when the ring closes (and its
/// remaining frames drain) or shutdown is flagged.
fn peer_writer_loop(
    addr: SocketAddr,
    hello: Vec<u8>,
    ring: &OutRing,
    disconnects: &AtomicU64,
    shutdown: &AtomicBool,
    recorder: &SharedRecorder,
) {
    let mut stream: Option<TcpStream> = None;
    let mut backoff = BACKOFF_FLOOR;
    let sleep_counted = |backoff: Duration| {
        recorder.add(names::NET_BACKOFF_SLEEPS, 1);
        recorder.add(names::NET_BACKOFF_SLEEP_MS, backoff.as_millis() as u64);
        std::thread::sleep(backoff);
    };
    'frames: while let Some(frame) = ring.front_blocking() {
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            if stream.is_none() {
                recorder.add(names::NET_RECONNECT_ATTEMPTS, 1);
                match TcpStream::connect(addr) {
                    Ok(mut s) => {
                        let _ = s.set_nodelay(true);
                        if s.write_all(&hello).is_ok() {
                            stream = Some(s);
                            backoff = BACKOFF_FLOOR;
                        } else {
                            disconnects.fetch_add(1, Ordering::SeqCst);
                            sleep_counted(backoff);
                            backoff = (backoff * 2).min(BACKOFF_CAP);
                            continue;
                        }
                    }
                    Err(_) => {
                        sleep_counted(backoff);
                        backoff = (backoff * 2).min(BACKOFF_CAP);
                        continue;
                    }
                }
            }
            let connected = stream.as_mut().expect("just connected");
            if connected.write_all(&frame).is_ok() {
                ring.advance();
                continue 'frames;
            }
            // The peer died mid-stream: count it, drop the socket, and
            // retry this same frame on the next connection.
            stream = None;
            disconnects.fetch_add(1, Ordering::SeqCst);
        }
    }
    if let Some(s) = stream {
        let _ = s.shutdown(std::net::Shutdown::Write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::SimDuration;

    /// Two free loopback addresses reserved by bind-then-drop.
    fn free_addrs(count: usize) -> Vec<SocketAddr> {
        let holds: Vec<TcpListener> = (0..count)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        holds.iter().map(|l| l.local_addr().unwrap()).collect()
    }

    fn collect(node: &mut NodeTransport, want: usize, secs: u64) -> Vec<Delivery> {
        let deadline = node.now() + SimDuration::from_secs(secs);
        let mut got = Vec::new();
        while got.len() < want && node.now() < deadline {
            got.extend(node.poll_deliver(node.now() + SimDuration::from_millis(50)));
        }
        got
    }

    #[test]
    fn two_nodes_exchange_broadcasts() {
        let addrs = free_addrs(2);
        let mut a =
            NodeTransport::bind(ReplicaId::new(0), ProtocolTag::Fbft, addrs[0], &addrs).unwrap();
        let mut b =
            NodeTransport::bind(ReplicaId::new(1), ProtocolTag::Fbft, addrs[1], &addrs).unwrap();
        a.broadcast(ReplicaId::new(0), vec![1, 2].into());
        b.broadcast(ReplicaId::new(1), vec![3].into());
        let at_b = collect(&mut b, 1, 10);
        let at_a = collect(&mut a, 1, 10);
        assert_eq!(at_b.len(), 1);
        assert_eq!(at_b[0].payload[..], [1, 2]);
        assert_eq!(at_a.len(), 1);
        assert_eq!(at_a[0].payload[..], [3]);
    }

    #[test]
    fn writer_reconnects_after_peer_restart_and_counts_the_loss() {
        let addrs = free_addrs(2);
        let mut a =
            NodeTransport::bind(ReplicaId::new(0), ProtocolTag::Fbft, addrs[0], &addrs).unwrap();
        {
            let mut b = NodeTransport::bind(ReplicaId::new(1), ProtocolTag::Fbft, addrs[1], &addrs)
                .unwrap();
            a.send(ReplicaId::new(0), ReplicaId::new(1), vec![1].into());
            assert_eq!(collect(&mut b, 1, 10).len(), 1, "first incarnation hears");
        } // kill -9: b's process (and its listener) is gone

        // Writes toward the dead peer fail; the writer starts re-dialing.
        // Eventually the restarted incarnation must hear a later send.
        let mut b2 =
            NodeTransport::bind(ReplicaId::new(1), ProtocolTag::Fbft, addrs[1], &addrs).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut heard = Vec::new();
        while heard.is_empty() && Instant::now() < deadline {
            a.send(ReplicaId::new(0), ReplicaId::new(1), vec![7].into());
            heard = collect(&mut b2, 1, 1);
        }
        assert_eq!(heard.len(), 1, "reconnection reaches the restarted peer");
        assert_eq!(heard[0].payload[..], [7]);
        assert!(
            a.stats().disconnects >= 1,
            "the lost connection was a counted event"
        );
    }
}
