//! Single-endpoint socket transport for standalone replica processes.
//!
//! [`TcpCluster`](crate::TcpCluster) hosts all `n` endpoints in one
//! process and connects the mesh at construction — fine for tests, useless
//! for a real deployment where each replica is its own process that must
//! survive peers being down, crashing, and coming back. [`NodeTransport`]
//! is the per-process half of the same design:
//!
//! - one listener accepts inbound connections from any peer, attributing
//!   each by its hello frame (same validation as the cluster readers);
//! - one **reconnecting writer thread per peer** dials the peer's address
//!   with capped exponential backoff, re-dials (and re-sends the hello)
//!   whenever a write fails, and keeps draining its outbound ring (the
//!   same `OutRing` the cluster's writer flushes) in
//!   the meantime — so a peer's crash never wedges the consensus loop,
//!   and its restart is picked up without any coordination;
//! - every lost connection, inbound or outbound, is a counted
//!   [`disconnect`](crate::NetworkStats::disconnects), not a silent
//!   thread exit.
//!
//! The [`Transport`] surface is identical to the cluster's, so the same
//! generic engine loop drives a replica here — `sft-node` is that loop
//! plus a write-ahead log.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sft_obs::{names, SharedRecorder};
use sft_types::{Envelope, ProtocolTag, ReplicaId, SendGate, SimTime};

use crate::frame::FrameDecoder;
use crate::outbox::OutRing;
use crate::{ClientDelivery, Delivery, NetworkStats, Transport};

/// First reconnect delay; doubles per failed attempt up to
/// [`BACKOFF_CAP`].
const BACKOFF_FLOOR: Duration = Duration::from_millis(50);

/// Ceiling on the reconnect backoff.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// How long an ack write may stall on a client that stopped reading
/// before the connection is declared dead. Acks are not replicated
/// state — clients own retries — so a stuck client costs at most this.
const ACK_WRITE_TIMEOUT: Duration = Duration::from_secs(2);

/// How long a peer writer sleeps per wait on a closed durability gate
/// before re-checking the shutdown flag. The WAL writer's watermark
/// advance wakes the wait immediately; this bound only caps how long a
/// shutdown can go unnoticed while a gate is stuck.
const GATE_POLL: Duration = Duration::from_millis(10);

/// Live client connections: write halves by gateway-assigned conn id,
/// plus the identity each hello claimed (where acks are addressed).
type ClientConns = Arc<Mutex<HashMap<u64, (TcpStream, ReplicaId)>>>;

/// One peer's outbound side: the ring its reconnecting writer drains.
/// The ring is bounded, so a long-dead peer costs a fixed amount of
/// memory; sends beyond the bound are counted drops (the peer will
/// block-sync what it missed, exactly as after a partition).
struct PeerOut {
    ring: Arc<OutRing>,
    writer: Option<JoinHandle<()>>,
}

/// One replica's view of the network: a listener for inbound peers and a
/// reconnecting writer per outbound peer. See the [module docs](self).
pub struct NodeTransport {
    id: ReplicaId,
    n: usize,
    protocol: ProtocolTag,
    start: Instant,
    /// Outbound side per replica id; the own-id slot is `None`
    /// (self-delivery is the harness's job, as with every transport).
    peers: Vec<Option<PeerOut>>,
    inbound: Receiver<Delivery>,
    staged: VecDeque<Delivery>,
    next_seq: u64,
    stats: NetworkStats,
    /// Connections lost, inbound readers and outbound writers combined.
    disconnects: Arc<AtomicU64>,
    /// Tells writer threads to stop reconnecting at shutdown.
    shutdown: Arc<AtomicBool>,
    /// The local listener's address (waking the acceptor at drop).
    listen_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    /// Client-plane frames queued by client readers (the listener doubles
    /// as the client gateway: a hello tagged [`ProtocolTag::Client`]
    /// makes the connection a client, not a peer).
    client_inbound: Receiver<ClientDelivery>,
    /// Write halves of live client connections, for acks.
    client_conns: ClientConns,
    /// Frame-level counters (no-op unless bound observed); writer
    /// threads hold their own clones for reconnect/backoff accounting.
    recorder: SharedRecorder,
}

impl NodeTransport {
    /// Binds this replica's listener on `listen` and spawns a
    /// reconnecting writer toward every other entry of `peers` (the full
    /// address table, indexed by replica id, own entry included). Peers
    /// need not be up yet — and may go down and come back — connections
    /// are (re-)established in the background with capped exponential
    /// backoff.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for `peers` or fewer than two
    /// addresses are given.
    ///
    /// # Errors
    ///
    /// Returns any socket error raised while binding the listener or
    /// spawning threads.
    pub fn bind(
        id: ReplicaId,
        protocol: ProtocolTag,
        listen: SocketAddr,
        peers: &[SocketAddr],
    ) -> io::Result<Self> {
        Self::bind_observed(id, protocol, listen, peers, sft_obs::noop())
    }

    /// [`bind`](Self::bind) with a live metrics recorder: reconnect
    /// attempts and backoff sleeps surface as `net_reconnect_attempts` /
    /// `net_backoff_sleeps` / `net_backoff_sleep_ms` counters, and every
    /// enqueued frame as `net_frames_sent` / `net_frame_bytes`. The
    /// recorder must be given at bind time because the per-peer writer
    /// threads are spawned here.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for `peers` or fewer than two
    /// addresses are given.
    ///
    /// # Errors
    ///
    /// Returns any socket error raised while binding the listener or
    /// spawning threads.
    pub fn bind_observed(
        id: ReplicaId,
        protocol: ProtocolTag,
        listen: SocketAddr,
        peers: &[SocketAddr],
        recorder: SharedRecorder,
    ) -> io::Result<Self> {
        let n = peers.len();
        assert!(n >= 2, "a replica set needs at least two members");
        assert!(id.as_usize() < n, "own id must index the address table");
        let listener = TcpListener::bind(listen)?;
        let listen_addr = listener.local_addr()?;

        let (inbound_tx, inbound) = mpsc::channel::<Delivery>();
        let (client_tx, client_inbound) = mpsc::channel::<ClientDelivery>();
        let client_conns: ClientConns = Arc::new(Mutex::new(HashMap::new()));
        let received = Arc::new(AtomicU64::new(0));
        let disconnects = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));

        let acceptor = std::thread::Builder::new()
            .name(format!("sft-node-accept-{}", id.as_u16()))
            .spawn({
                let inbound_tx = inbound_tx.clone();
                let client_conns = Arc::clone(&client_conns);
                let received = Arc::clone(&received);
                let disconnects = Arc::clone(&disconnects);
                let shutdown = Arc::clone(&shutdown);
                move || {
                    accept_loop(
                        listener,
                        id,
                        protocol,
                        inbound_tx,
                        client_tx,
                        client_conns,
                        received,
                        disconnects,
                        shutdown,
                    );
                }
            })?;

        let mut outs: Vec<Option<PeerOut>> = Vec::with_capacity(n);
        for (peer, addr) in peers.iter().enumerate() {
            if peer == id.as_usize() {
                outs.push(None);
                continue;
            }
            let hello =
                Envelope::to_peer(id, ReplicaId::new(peer as u16), protocol, Vec::new()).to_frame();
            let ring = OutRing::new();
            let writer = std::thread::Builder::new()
                .name(format!("sft-node-writer-{}-{peer}", id.as_u16()))
                .spawn({
                    let addr = *addr;
                    let ring = Arc::clone(&ring);
                    let disconnects = Arc::clone(&disconnects);
                    let shutdown = Arc::clone(&shutdown);
                    let recorder = Arc::clone(&recorder);
                    move || peer_writer_loop(addr, hello, &ring, &disconnects, &shutdown, &recorder)
                })?;
            outs.push(Some(PeerOut {
                ring,
                writer: Some(writer),
            }));
        }

        Ok(Self {
            id,
            n,
            protocol,
            start: Instant::now(),
            peers: outs,
            inbound,
            staged: VecDeque::new(),
            next_seq: 0,
            stats: NetworkStats::default(),
            disconnects,
            shutdown,
            listen_addr,
            acceptor: Some(acceptor),
            client_inbound,
            client_conns,
            recorder,
        })
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The bound listener address (useful when `listen` used port 0).
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// Re-anchors the transport clock at `origin` — a wall-clock instant
    /// shared by every process of the cluster (the deployment's genesis
    /// timestamp). [`now`](Transport::now) then reads the time elapsed
    /// since that shared instant (zero before it), so externally clocked
    /// protocols tick aligned epochs across processes regardless of when
    /// each one started — and a restarted replica resumes at the
    /// *cluster's* current epoch instead of replaying wall time from its
    /// own launch.
    #[must_use]
    pub fn with_time_origin(mut self, origin: std::time::SystemTime) -> Self {
        let now = Instant::now();
        self.start = match origin.elapsed() {
            // Anchor in the past: back-date the start by that much.
            Ok(past) => now.checked_sub(past).unwrap_or(now),
            // Anchor in the future: the clock reads zero until then.
            Err(ahead) => now + ahead.duration(),
        };
        self
    }

    /// Enqueues one pre-framed buffer toward `to`. A full or closed
    /// ring is a counted drop — the writer is down or hopelessly
    /// behind, and the peer will block-sync what it missed.
    fn enqueue(&mut self, to: ReplicaId, frame: Arc<[u8]>, payload_len: usize) {
        self.enqueue_gated(to, frame, payload_len, None);
    }

    /// [`enqueue`](Self::enqueue) with an optional durability gate the
    /// peer's writer thread honors before putting the frame on the wire.
    fn enqueue_gated(
        &mut self,
        to: ReplicaId,
        frame: Arc<[u8]>,
        payload_len: usize,
        gate: Option<SendGate>,
    ) {
        self.stats.messages += 1;
        self.stats.bytes += payload_len as u64;
        if self.recorder.enabled() {
            self.recorder.add(names::NET_FRAMES_SENT, 1);
            self.recorder
                .add(names::NET_FRAME_BYTES, frame.len() as u64);
        }
        let Some(peer) = self.peers[to.as_usize()].as_ref() else {
            self.stats.dropped += 1;
            return;
        };
        if !peer.ring.push_gated(frame, gate) {
            self.stats.dropped += 1;
        }
    }

    /// Stamps a popped delivery with arrival order.
    fn stage(&mut self, mut delivery: Delivery) {
        delivery.seq = self.next_seq;
        self.next_seq += 1;
        self.staged.push_back(delivery);
    }
}

impl Transport for NodeTransport {
    fn replica_count(&self) -> usize {
        self.n
    }

    fn send(&mut self, from: ReplicaId, to: ReplicaId, payload: Arc<[u8]>) {
        debug_assert_eq!(from, self.id, "a node only sends as itself");
        let env = Envelope::to_peer(from, to, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        self.enqueue(to, frame, payload.len());
    }

    fn broadcast(&mut self, from: ReplicaId, payload: Arc<[u8]>) {
        debug_assert_eq!(from, self.id, "a node only sends as itself");
        let env = Envelope::broadcast(from, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        for to in 0..self.n as u16 {
            let to = ReplicaId::new(to);
            if to != from {
                self.enqueue(to, Arc::clone(&frame), payload.len());
            }
        }
    }

    fn supports_gating(&self) -> bool {
        true // gated frames enqueue instantly; peer writers wait
    }

    fn send_gated(&mut self, from: ReplicaId, to: ReplicaId, payload: Arc<[u8]>, gate: SendGate) {
        debug_assert_eq!(from, self.id, "a node only sends as itself");
        let env = Envelope::to_peer(from, to, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        self.enqueue_gated(to, frame, payload.len(), Some(gate));
    }

    fn broadcast_gated(&mut self, from: ReplicaId, payload: Arc<[u8]>, gate: SendGate) {
        debug_assert_eq!(from, self.id, "a node only sends as itself");
        let env = Envelope::broadcast(from, self.protocol, Arc::clone(&payload));
        let frame: Arc<[u8]> = env.to_frame().into();
        for to in 0..self.n as u16 {
            let to = ReplicaId::new(to);
            if to != from {
                self.enqueue_gated(to, Arc::clone(&frame), payload.len(), Some(gate.clone()));
            }
        }
    }

    fn poll_deliver(&mut self, deadline: SimTime) -> Vec<Delivery> {
        while let Ok(d) = self.inbound.try_recv() {
            self.stage(d);
        }
        if self.staged.is_empty() {
            let now = self.now();
            if deadline > now {
                let wait = Duration::from_micros((deadline - now).as_micros());
                match self.inbound.recv_timeout(wait) {
                    Ok(d) => {
                        self.stage(d);
                        while let Ok(more) = self.inbound.try_recv() {
                            self.stage(more);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {}
                }
            }
        }
        let now = self.now();
        self.staged
            .drain(..)
            .map(|mut d| {
                d.deliver_at = now;
                d
            })
            .collect()
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }

    fn next_deliver_at(&self) -> Option<SimTime> {
        None
    }

    fn is_idle(&self) -> bool {
        // A lone endpoint cannot know what peers still have in flight;
        // "idle" is only "nothing locally staged".
        self.staged.is_empty()
    }

    fn stats(&self) -> NetworkStats {
        let mut stats = self.stats;
        stats.disconnects = self.disconnects.load(Ordering::SeqCst);
        stats
    }

    fn poll_clients(&mut self) -> Vec<ClientDelivery> {
        let mut out = Vec::new();
        while let Ok(d) = self.client_inbound.try_recv() {
            out.push(d);
        }
        out
    }

    fn send_client(&mut self, conn: u64, replica: ReplicaId, payload: Arc<[u8]>) {
        debug_assert_eq!(replica, self.id, "a node only acks as itself");
        let mut conns = self.client_conns.lock().expect("client registry");
        let Some((stream, dest)) = conns.get_mut(&conn) else {
            return; // client gone; clients own retries
        };
        let frame = Envelope::to_peer(replica, *dest, ProtocolTag::Client, payload).to_frame();
        if stream.write_all(&frame).is_err() {
            // Dead or hopelessly stalled (past ACK_WRITE_TIMEOUT): drop
            // the write half; the reader exits on its own at EOF.
            conns.remove(&conn);
            self.stats.dropped += 1;
        }
    }
}

impl Drop for NodeTransport {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Closing the rings ends the writer loops once they drain.
        for peer in std::mem::take(&mut self.peers).into_iter().flatten() {
            peer.ring.close();
            if let Some(handle) = peer.writer {
                let _ = handle.join();
            }
        }
        // Wake the acceptor so it can observe the shutdown flag.
        let _ = TcpStream::connect(self.listen_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// Accepts inbound connections for `owner` until shutdown, handing each
/// to a detached blocking reader. The reader sniffs the hello's
/// [`ProtocolTag`] to learn what the connection is: the replica protocol
/// makes it a peer (same validating [`FrameDecoder`] path as the cluster
/// readers), [`ProtocolTag::Client`] makes it a client served by the
/// gateway half. Reader threads exit on their own at EOF — each peer
/// exit bumps `disconnects`.
#[allow(clippy::too_many_arguments)] // spawn plumbing, all one-way
fn accept_loop(
    listener: TcpListener,
    owner: ReplicaId,
    protocol: ProtocolTag,
    inbound: Sender<Delivery>,
    client_tx: Sender<ClientDelivery>,
    client_conns: ClientConns,
    received: Arc<AtomicU64>,
    disconnects: Arc<AtomicU64>,
    shutdown: Arc<AtomicBool>,
) {
    let next_conn = Arc::new(AtomicU64::new(0));
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let _ = stream.set_nodelay(true);
        let _ = std::thread::Builder::new()
            .name(format!("sft-node-reader-{}", owner.as_u16()))
            .spawn({
                let inbound = inbound.clone();
                let client_tx = client_tx.clone();
                let client_conns = Arc::clone(&client_conns);
                let next_conn = Arc::clone(&next_conn);
                let received = Arc::clone(&received);
                let disconnects = Arc::clone(&disconnects);
                move || {
                    serve_inbound(
                        stream,
                        owner,
                        protocol,
                        &inbound,
                        &client_tx,
                        &client_conns,
                        &next_conn,
                        &received,
                        &disconnects,
                    );
                }
            });
    }
}

/// Reads until the first complete frame reveals what this connection is,
/// then runs the matching reader loop with the already-buffered bytes.
#[allow(clippy::too_many_arguments)] // spawn plumbing, all one-way
fn serve_inbound(
    mut stream: TcpStream,
    owner: ReplicaId,
    protocol: ProtocolTag,
    inbound: &Sender<Delivery>,
    client_tx: &Sender<ClientDelivery>,
    client_conns: &ClientConns,
    next_conn: &AtomicU64,
    received: &AtomicU64,
    disconnects: &AtomicU64,
) {
    let mut chunk = vec![0u8; 64 * 1024];
    let mut buffered = Vec::new();
    let tag = loop {
        match Envelope::decode_frame(&buffered) {
            Ok(Some((env, _))) => break env.protocol, // sniff only; not consumed
            Ok(None) => {}
            Err(_) => return, // malformed before it even said hello
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return,
            Ok(read) => buffered.extend_from_slice(&chunk[..read]),
        }
    };
    if tag == ProtocolTag::Client {
        client_reader_loop(stream, buffered, owner, client_tx, client_conns, next_conn);
    } else {
        reader_loop(stream, buffered, owner, protocol, inbound, received);
        disconnects.fetch_add(1, Ordering::SeqCst);
    }
}

/// Blocking reader for one inbound peer connection: reads until EOF,
/// error, or protocol violation, pushing validated deliveries into the
/// shared inbound queue.
fn reader_loop(
    mut stream: TcpStream,
    buffered: Vec<u8>,
    owner: ReplicaId,
    protocol: ProtocolTag,
    inbound: &Sender<Delivery>,
    received: &AtomicU64,
) {
    let mut decoder = FrameDecoder::new(owner, protocol);
    let mut chunk = vec![0u8; 64 * 1024];
    let mut decoded = Vec::new();
    if decoder.ingest(&buffered, &mut decoded).is_err() {
        return; // hello carried the wrong protocol family
    }
    loop {
        for delivery in decoded.drain(..) {
            received.fetch_add(1, Ordering::SeqCst);
            if inbound.send(delivery).is_err() {
                return; // transport gone
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return, // EOF or error: peer closed
            Ok(read) => {
                if decoder.ingest(&chunk[..read], &mut decoded).is_err() {
                    return; // protocol violation: refuse the peer
                }
            }
        }
    }
}

/// Blocking reader for one client connection: registers the write half
/// for acks once the hello binds an identity, then pushes every decoded
/// client frame to the gateway queue. Deregisters itself on any exit so
/// acks to a departed client become counted no-ops.
fn client_reader_loop(
    mut stream: TcpStream,
    buffered: Vec<u8>,
    owner: ReplicaId,
    client_tx: &Sender<ClientDelivery>,
    client_conns: &ClientConns,
    next_conn: &AtomicU64,
) {
    let mut decoder = FrameDecoder::new(owner, ProtocolTag::Client);
    let mut decoded = Vec::new();
    if decoder.ingest(&buffered, &mut decoded).is_err() {
        return; // violating hello: never registered
    }
    let Some(dest) = decoder.src() else {
        return; // buffered bytes held a frame, so this cannot happen
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // The timeout bounds how long send_client can stall on a client
    // that stopped reading (the halves share the socket; reads are
    // unaffected by SO_SNDTIMEO).
    let _ = write_half.set_write_timeout(Some(ACK_WRITE_TIMEOUT));
    let conn = next_conn.fetch_add(1, Ordering::SeqCst);
    client_conns
        .lock()
        .expect("client registry")
        .insert(conn, (write_half, dest));

    let mut chunk = vec![0u8; 64 * 1024];
    'serve: loop {
        for delivery in decoded.drain(..) {
            let frame = ClientDelivery {
                conn,
                replica: owner,
                payload: delivery.payload,
            };
            if client_tx.send(frame).is_err() {
                break 'serve; // transport gone
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break, // client hung up
            Ok(read) => {
                if decoder.ingest(&chunk[..read], &mut decoded).is_err() {
                    break; // protocol violation: refuse the client
                }
            }
        }
    }
    client_conns.lock().expect("client registry").remove(&conn);
}

/// The reconnecting writer toward one peer: dials with capped exponential
/// backoff, leads every (re)connection with the hello frame, and re-dials
/// on any write failure — counting each lost connection. The ring is
/// drained peek-then-pop, so a frame that failed mid-write is retried
/// whole on the next connection. A frame carrying a durability gate is
/// held — before any connect or write — until the WAL watermark covers
/// it: the FIFO ring then holds everything behind it too, so gating
/// delays the stream without reordering it. Exits when the ring closes
/// (and its remaining frames drain) or shutdown is flagged.
fn peer_writer_loop(
    addr: SocketAddr,
    hello: Vec<u8>,
    ring: &OutRing,
    disconnects: &AtomicU64,
    shutdown: &AtomicBool,
    recorder: &SharedRecorder,
) {
    let mut stream: Option<TcpStream> = None;
    let mut backoff = BACKOFF_FLOOR;
    let sleep_counted = |backoff: Duration| {
        recorder.add(names::NET_BACKOFF_SLEEPS, 1);
        recorder.add(names::NET_BACKOFF_SLEEP_MS, backoff.as_millis() as u64);
        std::thread::sleep(backoff);
    };
    'frames: while let Some((frame, gate)) = ring.front_blocking() {
        if let Some(gate) = gate {
            // Watermark-before-flush: the frame's justifying WAL
            // records must be durable before its first byte moves.
            while !gate.wait_open_timeout(GATE_POLL) {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            if stream.is_none() {
                recorder.add(names::NET_RECONNECT_ATTEMPTS, 1);
                match TcpStream::connect(addr) {
                    Ok(mut s) => {
                        let _ = s.set_nodelay(true);
                        if s.write_all(&hello).is_ok() {
                            stream = Some(s);
                            backoff = BACKOFF_FLOOR;
                        } else {
                            disconnects.fetch_add(1, Ordering::SeqCst);
                            sleep_counted(backoff);
                            backoff = (backoff * 2).min(BACKOFF_CAP);
                            continue;
                        }
                    }
                    Err(_) => {
                        sleep_counted(backoff);
                        backoff = (backoff * 2).min(BACKOFF_CAP);
                        continue;
                    }
                }
            }
            let connected = stream.as_mut().expect("just connected");
            if connected.write_all(&frame).is_ok() {
                ring.advance();
                continue 'frames;
            }
            // The peer died mid-stream: count it, drop the socket, and
            // retry this same frame on the next connection.
            stream = None;
            disconnects.fetch_add(1, Ordering::SeqCst);
        }
    }
    if let Some(s) = stream {
        let _ = s.shutdown(std::net::Shutdown::Write);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sft_types::SimDuration;

    /// Two free loopback addresses reserved by bind-then-drop.
    fn free_addrs(count: usize) -> Vec<SocketAddr> {
        let holds: Vec<TcpListener> = (0..count)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        holds.iter().map(|l| l.local_addr().unwrap()).collect()
    }

    fn collect(node: &mut NodeTransport, want: usize, secs: u64) -> Vec<Delivery> {
        let deadline = node.now() + SimDuration::from_secs(secs);
        let mut got = Vec::new();
        while got.len() < want && node.now() < deadline {
            got.extend(node.poll_deliver(node.now() + SimDuration::from_millis(50)));
        }
        got
    }

    #[test]
    fn two_nodes_exchange_broadcasts() {
        let addrs = free_addrs(2);
        let mut a =
            NodeTransport::bind(ReplicaId::new(0), ProtocolTag::Fbft, addrs[0], &addrs).unwrap();
        let mut b =
            NodeTransport::bind(ReplicaId::new(1), ProtocolTag::Fbft, addrs[1], &addrs).unwrap();
        a.broadcast(ReplicaId::new(0), vec![1, 2].into());
        b.broadcast(ReplicaId::new(1), vec![3].into());
        let at_b = collect(&mut b, 1, 10);
        let at_a = collect(&mut a, 1, 10);
        assert_eq!(at_b.len(), 1);
        assert_eq!(at_b[0].payload[..], [1, 2]);
        assert_eq!(at_a.len(), 1);
        assert_eq!(at_a[0].payload[..], [3]);
    }

    #[test]
    fn client_hello_routes_to_the_gateway_not_the_engine_path() {
        let addrs = free_addrs(2);
        let mut a =
            NodeTransport::bind(ReplicaId::new(0), ProtocolTag::Fbft, addrs[0], &addrs).unwrap();
        let _b =
            NodeTransport::bind(ReplicaId::new(1), ProtocolTag::Fbft, addrs[1], &addrs).unwrap();

        let mut sock = TcpStream::connect(a.listen_addr()).unwrap();
        sock.set_nodelay(true).unwrap();
        let me = ReplicaId::new(42);
        let hello =
            Envelope::to_peer(me, ReplicaId::new(0), ProtocolTag::Client, Vec::new()).to_frame();
        sock.write_all(&hello).unwrap();
        let request =
            Envelope::to_peer(me, ReplicaId::new(0), ProtocolTag::Client, vec![9, 9]).to_frame();
        sock.write_all(&request).unwrap();

        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = Vec::new();
        while got.is_empty() && Instant::now() < deadline {
            got = a.poll_clients();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].replica, ReplicaId::new(0));
        assert_eq!(got[0].payload[..], [9, 9]);
        // The client frame never entered the replica delivery path.
        assert!(a
            .poll_deliver(a.now() + SimDuration::from_millis(20))
            .is_empty());

        a.send_client(got[0].conn, ReplicaId::new(0), vec![0xAC].into());
        sock.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = Vec::new();
        let mut tmp = [0u8; 1024];
        let env = loop {
            let n = sock.read(&mut tmp).expect("ack within the timeout");
            assert!(n > 0, "gateway closed instead of acking");
            buf.extend_from_slice(&tmp[..n]);
            if let Some((env, _)) = Envelope::decode_frame(&buf).unwrap() {
                break env;
            }
        };
        assert_eq!(env.src, ReplicaId::new(0));
        assert_eq!(env.protocol, ProtocolTag::Client);
        assert_eq!(env.payload[..], [0xAC]);

        // After the client leaves, acks are silent no-ops — whether the
        // write fails first or the reader deregistered the conn first.
        drop(sock);
        std::thread::sleep(Duration::from_millis(50));
        a.send_client(got[0].conn, ReplicaId::new(0), vec![1].into());
        a.send_client(got[0].conn, ReplicaId::new(0), vec![2].into());
        a.send_client(999, ReplicaId::new(0), vec![3].into());
    }

    #[test]
    fn writer_reconnects_after_peer_restart_and_counts_the_loss() {
        let addrs = free_addrs(2);
        let mut a =
            NodeTransport::bind(ReplicaId::new(0), ProtocolTag::Fbft, addrs[0], &addrs).unwrap();
        {
            let mut b = NodeTransport::bind(ReplicaId::new(1), ProtocolTag::Fbft, addrs[1], &addrs)
                .unwrap();
            a.send(ReplicaId::new(0), ReplicaId::new(1), vec![1].into());
            assert_eq!(collect(&mut b, 1, 10).len(), 1, "first incarnation hears");
        } // kill -9: b's process (and its listener) is gone

        // Writes toward the dead peer fail; the writer starts re-dialing.
        // Eventually the restarted incarnation must hear a later send.
        let mut b2 =
            NodeTransport::bind(ReplicaId::new(1), ProtocolTag::Fbft, addrs[1], &addrs).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut heard = Vec::new();
        while heard.is_empty() && Instant::now() < deadline {
            a.send(ReplicaId::new(0), ReplicaId::new(1), vec![7].into());
            heard = collect(&mut b2, 1, 1);
        }
        assert_eq!(heard.len(), 1, "reconnection reaches the restarted peer");
        assert_eq!(heard[0].payload[..], [7]);
        assert!(
            a.stats().disconnects >= 1,
            "the lost connection was a counted event"
        );
    }
}
