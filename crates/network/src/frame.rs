//! Incremental, validating frame decoding shared by every socket
//! reader.
//!
//! A connection's byte stream carries length-prefixed [`Envelope`]
//! frames: a hello naming the peer first, payload frames after. The
//! cluster's multiplexing endpoint readers and the node transport's
//! per-connection readers feed whatever bytes the socket produced into
//! one [`FrameDecoder`] per connection and get back fully validated
//! [`Delivery`]s — or a violation, after which the connection must be
//! dropped (a transport does not forward bytes it cannot vouch for).

use sft_types::{Dest, Envelope, ProtocolTag, ReplicaId, SimTime};

use crate::Delivery;

/// Per-connection decode state: the partial-frame buffer plus the peer
/// identity claimed by the hello frame.
pub(crate) struct FrameDecoder {
    /// The endpoint this connection delivers to.
    owner: ReplicaId,
    protocol: ProtocolTag,
    buf: Vec<u8>,
    /// Source named by the hello; every later frame must match.
    claimed_src: Option<ReplicaId>,
}

/// The stream broke protocol: malformed frame, wrong [`ProtocolTag`],
/// misrouted destination, or a source switch mid-connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Violation;

impl FrameDecoder {
    pub(crate) fn new(owner: ReplicaId, protocol: ProtocolTag) -> Self {
        Self {
            owner,
            protocol,
            buf: Vec::with_capacity(64 * 1024),
            claimed_src: None,
        }
    }

    /// The peer identity the hello frame bound, once seen. Client
    /// gateways use it to address acks back down the connection.
    pub(crate) fn src(&self) -> Option<ReplicaId> {
        self.claimed_src
    }

    /// Buffers `bytes` and appends every complete, valid frame to `out`
    /// as a [`Delivery`] (with `deliver_at`/`seq` zeroed — the polling
    /// side stamps arrival). The first frame of a connection is the
    /// hello: it binds the peer identity and yields no delivery.
    ///
    /// # Errors
    ///
    /// Returns [`Violation`] when the stream breaks protocol; the
    /// decoder is then poisoned and the connection must be dropped.
    pub(crate) fn ingest(
        &mut self,
        bytes: &[u8],
        out: &mut Vec<Delivery>,
    ) -> Result<(), Violation> {
        self.buf.extend_from_slice(bytes);
        loop {
            match Envelope::decode_frame(&self.buf) {
                Ok(None) => return Ok(()),
                Err(_) => return Err(Violation), // malformed stream
                Ok(Some((env, used))) => {
                    self.buf.drain(..used);
                    if env.protocol != self.protocol {
                        return Err(Violation); // wrong protocol family
                    }
                    match env.dest {
                        Dest::Broadcast => {}
                        Dest::Peer(p) if p == self.owner => {}
                        Dest::Peer(_) => return Err(Violation), // misrouted
                    }
                    match self.claimed_src {
                        // First frame is the hello: it names the peer
                        // this connection speaks for, no payload.
                        None => {
                            self.claimed_src = Some(env.src);
                            continue;
                        }
                        // One connection, one peer identity.
                        Some(src) if src != env.src => return Err(Violation),
                        Some(_) => {}
                    }
                    out.push(Delivery {
                        from: env.src,
                        to: self.owner,
                        payload: env.payload,
                        deliver_at: SimTime::ZERO, // stamped at poll
                        seq: 0,                    // stamped at poll
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello(from: u16, to: u16) -> Vec<u8> {
        Envelope::to_peer(
            ReplicaId::new(from),
            ReplicaId::new(to),
            ProtocolTag::Fbft,
            Vec::new(),
        )
        .to_frame()
    }

    fn payload_frame(from: u16, to: u16, payload: Vec<u8>) -> Vec<u8> {
        Envelope::to_peer(
            ReplicaId::new(from),
            ReplicaId::new(to),
            ProtocolTag::Fbft,
            payload,
        )
        .to_frame()
    }

    #[test]
    fn hello_then_frames_split_at_arbitrary_boundaries() {
        let mut stream = hello(2, 0);
        stream.extend(payload_frame(2, 0, vec![7, 8]));
        stream.extend(payload_frame(2, 0, vec![9]));
        let mut decoder = FrameDecoder::new(ReplicaId::new(0), ProtocolTag::Fbft);
        let mut out = Vec::new();
        // Byte-at-a-time ingestion: framing never depends on read sizes.
        for byte in stream {
            decoder.ingest(&[byte], &mut out).unwrap();
        }
        assert_eq!(out.len(), 2, "the hello yields no delivery");
        assert_eq!(out[0].payload[..], [7, 8]);
        assert_eq!(out[1].payload[..], [9]);
        assert!(out.iter().all(|d| d.from == ReplicaId::new(2)));
        assert!(out.iter().all(|d| d.to == ReplicaId::new(0)));
    }

    #[test]
    fn wrong_protocol_is_a_violation() {
        let frame = Envelope::to_peer(
            ReplicaId::new(1),
            ReplicaId::new(0),
            ProtocolTag::Streamlet,
            Vec::new(),
        )
        .to_frame();
        let mut decoder = FrameDecoder::new(ReplicaId::new(0), ProtocolTag::Fbft);
        assert_eq!(decoder.ingest(&frame, &mut Vec::new()), Err(Violation));
    }

    #[test]
    fn misrouted_destination_is_a_violation() {
        let mut decoder = FrameDecoder::new(ReplicaId::new(0), ProtocolTag::Fbft);
        let frame = payload_frame(1, 3, vec![1]);
        assert_eq!(decoder.ingest(&frame, &mut Vec::new()), Err(Violation));
    }

    #[test]
    fn source_switch_mid_connection_is_a_violation() {
        let mut decoder = FrameDecoder::new(ReplicaId::new(0), ProtocolTag::Fbft);
        let mut out = Vec::new();
        decoder.ingest(&hello(1, 0), &mut out).unwrap();
        decoder
            .ingest(&payload_frame(1, 0, vec![5]), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(
            decoder.ingest(&payload_frame(2, 0, vec![6]), &mut out),
            Err(Violation),
            "one connection speaks for one peer"
        );
    }
}
