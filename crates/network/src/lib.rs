//! # sft-network
//!
//! In-process message transport for the deterministic simulator: a
//! [`SimNetwork`] that queues encoded messages with an injected one-way
//! delay δ and delivers them in a platform-independent order.
//!
//! The paper's evaluation (§4) runs replicas with *injected* inter-region
//! latencies (δ = 100 ms / 200 ms) rather than bandwidth-limited links, so
//! the transport models exactly that: every message sent at time `t` is
//! delivered at `t + δ`, and the network keeps exact per-message byte
//! accounting (for the message-complexity experiments) instead of shaping
//! traffic. Real async networking (the FeBFT-style socket layer) will slot
//! in behind the same envelope shape in a later PR.
//!
//! ## Determinism
//!
//! Delivery order is `(deliver_at, sequence number)` — the sequence number
//! is assigned at send time, so two messages due at the same instant are
//! delivered in send order on every platform and every run.
//!
//! ## Example
//!
//! ```
//! use sft_network::SimNetwork;
//! use sft_types::{ReplicaId, SimDuration, SimTime};
//!
//! let mut net = SimNetwork::new(SimDuration::from_millis(100));
//! net.send(ReplicaId::new(0), ReplicaId::new(1), vec![1, 2, 3]);
//! assert!(net.deliver_due(SimTime::from_millis(99)).is_empty());
//! let delivered = net.deliver_due(SimTime::from_millis(100));
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(&delivered[0].payload[..], &[1, 2, 3][..]);
//! ```

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use sft_types::{ReplicaId, SimDuration, SimTime};

/// One queued or delivered message.
#[derive(Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending replica.
    pub from: ReplicaId,
    /// Receiving replica.
    pub to: ReplicaId,
    /// Encoded message bytes. Shared, not owned: a broadcast encodes its
    /// message once and every recipient's envelope points at the same
    /// buffer, so fan-out costs reference counts instead of `n − 1` copies
    /// (byte *accounting* still charges every recipient).
    pub payload: Arc<[u8]>,
    /// Instant the message becomes deliverable.
    pub deliver_at: SimTime,
    /// Send-order sequence number (the delivery tiebreaker).
    pub seq: u64,
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Envelope(#{} {} -> {} {}B @ {})",
            self.seq,
            self.from,
            self.to,
            self.payload.len(),
            self.deliver_at
        )
    }
}

/// Aggregate traffic counters, the quantities the message-complexity
/// experiments chart.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total messages accepted for delivery.
    pub messages: u64,
    /// Total payload bytes accepted for delivery.
    pub bytes: u64,
}

/// A deterministic store-and-forward network with a uniform one-way delay.
#[derive(Clone, Debug)]
pub struct SimNetwork {
    delay: SimDuration,
    now: SimTime,
    /// Pending envelopes ordered by `(deliver_at, seq)`. Sends enqueue at
    /// `now + delay` and `now` never decreases, so pushing to the back and
    /// popping from the front maintains the order with no re-sorting.
    queue: VecDeque<Envelope>,
    next_seq: u64,
    stats: NetworkStats,
}

impl SimNetwork {
    /// Creates a network with one-way delay δ.
    pub fn new(delay: SimDuration) -> Self {
        Self {
            delay,
            now: SimTime::ZERO,
            queue: VecDeque::new(),
            next_seq: 0,
            stats: NetworkStats::default(),
        }
    }

    /// The configured one-way delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// The network's current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queues `payload` from `from` to `to`, due one delay from now.
    /// Accepts owned bytes or an already-shared buffer.
    pub fn send(&mut self, from: ReplicaId, to: ReplicaId, payload: impl Into<Arc<[u8]>>) {
        let payload = payload.into();
        self.stats.messages += 1;
        self.stats.bytes += payload.len() as u64;
        let envelope = Envelope {
            from,
            to,
            payload,
            deliver_at: self.now + self.delay,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.queue.push_back(envelope);
    }

    /// Sends `payload` from `from` to every replica in `0..n` except the
    /// sender (a replica hands its own messages to itself directly, without
    /// paying the network delay). The buffer is encoded/owned once and
    /// shared across recipients; per-recipient byte accounting is
    /// unchanged.
    pub fn broadcast(&mut self, from: ReplicaId, n: usize, payload: impl Into<Arc<[u8]>>) {
        let payload: Arc<[u8]> = payload.into();
        for to in 0..n as u16 {
            let to = ReplicaId::new(to);
            if to != from {
                self.send(from, to, Arc::clone(&payload));
            }
        }
    }

    /// Advances virtual time to `until` and returns every envelope due by
    /// then, in deterministic `(deliver_at, seq)` order.
    ///
    /// # Panics
    ///
    /// Panics if `until` is before the current time (time is monotonic).
    pub fn deliver_due(&mut self, until: SimTime) -> Vec<Envelope> {
        assert!(
            until >= self.now,
            "time moved backwards: {until} < {}",
            self.now
        );
        self.now = until;
        let mut due = Vec::new();
        while self.queue.front().is_some_and(|e| e.deliver_at <= until) {
            due.push(self.queue.pop_front().expect("checked front"));
        }
        due
    }

    /// Number of messages still in flight.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The earliest instant an in-flight message becomes deliverable, or
    /// `None` if the queue is empty — the quantity an event-driven driver
    /// (as opposed to the lock-step epoch loop) schedules against.
    pub fn next_deliver_at(&self) -> Option<SimTime> {
        self.queue.front().map(|e| e.deliver_at)
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: u16) -> ReplicaId {
        ReplicaId::new(v)
    }

    #[test]
    fn delivery_respects_delay() {
        let mut net = SimNetwork::new(SimDuration::from_millis(100));
        net.send(r(0), r(1), vec![9]);
        assert_eq!(net.pending(), 1);
        assert!(net.deliver_due(SimTime::from_millis(50)).is_empty());
        let due = net.deliver_due(SimTime::from_millis(100));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].from, r(0));
        assert_eq!(due[0].to, r(1));
        assert_eq!(net.pending(), 0);
    }

    #[test]
    fn later_sends_deliver_later() {
        let mut net = SimNetwork::new(SimDuration::from_millis(100));
        net.send(r(0), r(1), vec![1]);
        net.deliver_due(SimTime::from_millis(30));
        net.send(r(0), r(1), vec![2]); // due at 130
        let due = net.deliver_due(SimTime::from_millis(100));
        assert_eq!(due.len(), 1);
        assert_eq!(&due[0].payload[..], &[1][..]);
        let due = net.deliver_due(SimTime::from_millis(130));
        assert_eq!(&due[0].payload[..], &[2][..]);
    }

    #[test]
    fn simultaneous_messages_keep_send_order() {
        let mut net = SimNetwork::new(SimDuration::from_millis(10));
        for i in 0..5u8 {
            net.send(r(i as u16), r(9), vec![i]);
        }
        let due = net.deliver_due(SimTime::from_millis(10));
        let order: Vec<u8> = due.iter().map(|e| e.payload[0]).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn broadcast_skips_sender_and_counts_bytes() {
        let mut net = SimNetwork::new(SimDuration::from_millis(1));
        net.broadcast(r(2), 4, &[0xaa, 0xbb][..]);
        let due = net.deliver_due(SimTime::from_millis(1));
        let recipients: Vec<u16> = due.iter().map(|e| e.to.as_u16()).collect();
        assert_eq!(recipients, vec![0, 1, 3]);
        assert_eq!(
            net.stats(),
            NetworkStats {
                messages: 3,
                bytes: 6
            }
        );
    }

    #[test]
    fn broadcast_shares_one_buffer_across_recipients() {
        let mut net = SimNetwork::new(SimDuration::from_millis(1));
        net.broadcast(r(0), 4, vec![1, 2, 3]);
        let due = net.deliver_due(SimTime::from_millis(1));
        assert_eq!(due.len(), 3);
        assert!(
            due.windows(2)
                .all(|w| Arc::ptr_eq(&w[0].payload, &w[1].payload)),
            "recipients alias the same encoded buffer"
        );
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn time_is_monotonic() {
        let mut net = SimNetwork::new(SimDuration::from_millis(1));
        net.deliver_due(SimTime::from_millis(5));
        net.deliver_due(SimTime::from_millis(4));
    }

    #[test]
    fn next_deliver_at_tracks_the_queue_head() {
        let mut net = SimNetwork::new(SimDuration::from_millis(100));
        assert_eq!(net.next_deliver_at(), None);
        net.send(r(0), r(1), vec![1]);
        assert_eq!(net.next_deliver_at(), Some(SimTime::from_millis(100)));
        net.deliver_due(SimTime::from_millis(100));
        assert_eq!(net.next_deliver_at(), None);
    }

    #[test]
    fn zero_delay_delivers_immediately() {
        let mut net = SimNetwork::new(SimDuration::ZERO);
        net.send(r(0), r(1), vec![1]);
        assert_eq!(net.deliver_due(net.now()).len(), 1);
    }
}
