//! # sft-network
//!
//! The transport layer of the SFT stack: the [`Transport`] trait every
//! run harness drives, its two implementations — the deterministic
//! in-process [`SimNetwork`] (via [`SimTransport`]) and the real-socket
//! [`TcpCluster`] — and the shared wire [`Envelope`] both speak.
//!
//! The deterministic half: a [`SimNetwork`] queues encoded messages with
//! an injected one-way delay δ and delivers them in a platform-independent
//! order.
//!
//! The paper's evaluation (§4) runs replicas with *injected* inter-region
//! latencies (δ = 100 ms / 200 ms) rather than bandwidth-limited links, so
//! the transport models exactly that: every message sent at time `t` is
//! delivered at `t + δ`, and the network keeps exact per-message byte
//! accounting (for the message-complexity experiments) instead of shaping
//! traffic. Real async networking (the FeBFT-style socket layer) will slot
//! in behind the same envelope shape in a later PR.
//!
//! ## Determinism
//!
//! Delivery order is `(deliver_at, sequence number)` — the sequence number
//! is assigned at send time, so two messages due at the same instant are
//! delivered in send order on every platform and every run.
//!
//! ## Partial synchrony
//!
//! A [`FaultSchedule`] turns the lossless transport into the partial-
//! synchrony model the paper's liveness arguments assume: per-message drop
//! probability under a seeded PRNG, an optional partition with a heal
//! time, and a global stabilization time (GST) after which delivery is
//! reliable again. Drop decisions are made at *send* time from the seeded
//! stream, so a faulty run is exactly as reproducible as a lossless one.
//!
//! ## Example
//!
//! ```
//! use sft_network::SimNetwork;
//! use sft_types::{ReplicaId, SimDuration, SimTime};
//!
//! let mut net = SimNetwork::new(SimDuration::from_millis(100));
//! net.send(ReplicaId::new(0), ReplicaId::new(1), vec![1, 2, 3]);
//! assert!(net.deliver_due(SimTime::from_millis(99)).is_empty());
//! let delivered = net.deliver_due(SimTime::from_millis(100));
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(&delivered[0].payload[..], &[1, 2, 3][..]);
//! ```

#![deny(missing_docs)]

mod frame;
pub mod node;
mod outbox;
pub mod tcp;

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use sft_crypto::rng::{RngCore, SplitMix64};
use sft_types::{ReplicaId, SendGate, SimDuration, SimTime};

pub use node::NodeTransport;
pub use sft_types::{Dest, Envelope, ProtocolTag};
pub use tcp::TcpCluster;

/// A network as a run harness sees it: sends tagged by source replica, a
/// poll that waits for (or, in simulation, advances virtual time to)
/// deliveries, and a time source. [`SimTransport`] implements it over the
/// deterministic [`SimNetwork`]; [`TcpCluster`] implements it over real
/// loopback sockets — the same generic run loop drives either.
pub trait Transport {
    /// Number of replicas this transport connects.
    fn replica_count(&self) -> usize;

    /// Sends `payload` point-to-point from `from` to `to`.
    fn send(&mut self, from: ReplicaId, to: ReplicaId, payload: Arc<[u8]>);

    /// Sends `payload` from `from` to every other replica. The buffer is
    /// encoded once and shared; byte accounting still charges every
    /// recipient.
    fn broadcast(&mut self, from: ReplicaId, payload: Arc<[u8]>);

    /// Waits until at least one delivery is available or `deadline` is
    /// reached, and returns everything deliverable at that point. The
    /// simulator *advances virtual time* (never past `deadline`); a socket
    /// transport blocks on its inbound queue. May return early with
    /// deliveries that arrived before `deadline`; returns empty once
    /// `deadline` has passed with nothing pending.
    fn poll_deliver(&mut self, deadline: SimTime) -> Vec<Delivery>;

    /// The transport's current time: virtual for the simulator, wall-clock
    /// microseconds since construction for sockets.
    fn now(&self) -> SimTime;

    /// The earliest instant an in-flight message becomes deliverable, if
    /// the transport can know it (the simulator can; sockets cannot and
    /// return `None`).
    fn next_deliver_at(&self) -> Option<SimTime>;

    /// True when the transport knows of no undelivered traffic. Drain
    /// loops use this to decide whether another poll is worth it.
    fn is_idle(&self) -> bool;

    /// Aggregate traffic counters since construction.
    fn stats(&self) -> NetworkStats;

    /// Drains client-plane frames ([`ProtocolTag::Client`] submissions)
    /// received since the last poll, attributing each to the connection it
    /// arrived on and the replica it addressed. Non-blocking: a transport
    /// with no client gateway (the simulator feeds clients through the
    /// harness instead) returns nothing.
    fn poll_clients(&mut self) -> Vec<ClientDelivery> {
        Vec::new()
    }

    /// Sends an encoded client frame (an ack) from `replica` back down
    /// client connection `conn`. Transports without a client gateway drop
    /// it; a gateway drops it when the connection is gone (clients own
    /// retries — acks are not replicated state).
    fn send_client(&mut self, conn: u64, replica: ReplicaId, payload: Arc<[u8]>) {
        let _ = (conn, replica, payload);
    }

    /// True when [`send_gated`](Self::send_gated) enqueues without
    /// blocking — the transport's own writer threads hold gated frames
    /// until the durability watermark covers them. The default `false`
    /// means the gated sends fall back to waiting *before* enqueueing,
    /// which preserves the persist-before-send invariant but keeps the
    /// caller on the hook for the fsync latency.
    fn supports_gating(&self) -> bool {
        false
    }

    /// [`send`](Self::send), but the frame may reach the wire only once
    /// `gate` is open (the durability watermark covers the WAL records
    /// justifying this message). The default implementation waits for
    /// the gate inline and then sends — correct everywhere (and exactly
    /// write-through under the deterministic simulator, whose virtual
    /// clock does not advance while the caller waits); socket transports
    /// override it to enqueue immediately and gate in their writer
    /// threads.
    fn send_gated(&mut self, from: ReplicaId, to: ReplicaId, payload: Arc<[u8]>, gate: SendGate) {
        gate.wait_open();
        self.send(from, to, payload);
    }

    /// [`broadcast`](Self::broadcast) with a durability gate; same
    /// contract and default as [`send_gated`](Self::send_gated).
    fn broadcast_gated(&mut self, from: ReplicaId, payload: Arc<[u8]>, gate: SendGate) {
        gate.wait_open();
        self.broadcast(from, payload);
    }
}

/// One client-plane frame a transport's gateway received: which accepted
/// connection it came from (the routing key for acks back), which replica
/// it addressed, and the encoded [`sft_types::ClientFrame`] payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientDelivery {
    /// Gateway-assigned connection id (unique per accepted client socket).
    pub conn: u64,
    /// The replica the frame was addressed to.
    pub replica: ReplicaId,
    /// The encoded client frame.
    pub payload: Arc<[u8]>,
}

/// A network partition: the `isolated` replicas cannot exchange messages
/// with the rest of the system until `heal_at`. Messages *within* either
/// side flow normally.
#[derive(Clone, Debug, PartialEq)]
pub struct Partition {
    /// Replicas cut off from the remainder of the system.
    pub isolated: Vec<ReplicaId>,
    /// Instant the partition heals: messages sent at or after this time
    /// cross the cut again.
    pub heal_at: SimTime,
}

impl Partition {
    /// True if a message from `from` to `to` sent at `now` crosses an
    /// active cut.
    fn severs(&self, from: ReplicaId, to: ReplicaId, now: SimTime) -> bool {
        now < self.heal_at && (self.isolated.contains(&from) != self.isolated.contains(&to))
    }
}

/// A deterministic partial-synchrony schedule for [`SimNetwork`]:
/// probabilistic per-message loss before GST, plus an optional partition.
///
/// # Examples
///
/// ```
/// use sft_network::FaultSchedule;
/// use sft_types::SimTime;
///
/// // 10% loss until the 2-second mark, reliable after.
/// let faults = FaultSchedule::lossy(7, 0.10, SimTime::from_millis(2000));
/// assert_eq!(faults.gst, SimTime::from_millis(2000));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSchedule {
    /// Seed for the drop-decision stream (one draw per send before GST).
    pub seed: u64,
    /// Probability in `[0, 1]` that a message sent before [`gst`](Self::gst)
    /// is dropped.
    pub drop_probability: f64,
    /// Global stabilization time: sends at or after this instant are never
    /// probabilistically dropped (partitions have their own heal time).
    pub gst: SimTime,
    /// Optional partition layered on top of the probabilistic loss.
    pub partition: Option<Partition>,
}

impl FaultSchedule {
    /// A purely lossy schedule: drop each pre-GST message with
    /// `drop_probability`, no partition.
    pub fn lossy(seed: u64, drop_probability: f64, gst: SimTime) -> Self {
        Self {
            seed,
            drop_probability,
            gst,
            partition: None,
        }
    }

    /// A clean partition isolating `isolated` until `heal_at`; no
    /// probabilistic loss.
    pub fn partition(isolated: Vec<ReplicaId>, heal_at: SimTime) -> Self {
        Self {
            seed: 0,
            drop_probability: 0.0,
            gst: SimTime::ZERO,
            partition: Some(Partition { isolated, heal_at }),
        }
    }

    /// Layers a partition onto this schedule.
    pub fn with_partition(mut self, isolated: Vec<ReplicaId>, heal_at: SimTime) -> Self {
        self.partition = Some(Partition { isolated, heal_at });
        self
    }
}

/// Live drop-decision state derived from a [`FaultSchedule`].
#[derive(Clone, Debug)]
struct FaultState {
    schedule: FaultSchedule,
    rng: SplitMix64,
}

impl FaultState {
    fn new(schedule: FaultSchedule) -> Self {
        let rng = SplitMix64::new(schedule.seed);
        Self { schedule, rng }
    }

    /// Decides the fate of one send. Consumes exactly one PRNG draw per
    /// pre-GST send (partition cuts included), so the decision stream —
    /// and with it the whole run — is a pure function of the schedule and
    /// the send order.
    fn drops(&mut self, from: ReplicaId, to: ReplicaId, now: SimTime) -> bool {
        let severed = self
            .schedule
            .partition
            .as_ref()
            .is_some_and(|p| p.severs(from, to, now));
        let lossy = now < self.schedule.gst && self.schedule.drop_probability > 0.0;
        let unlucky = lossy && {
            // One draw per candidate send keeps the stream aligned even
            // when the partition already sealed the message's fate.
            let draw = self.rng.next_u64() as f64 / (u64::MAX as f64);
            draw < self.schedule.drop_probability
        };
        severed || unlucky
    }
}

/// One queued or delivered message, as a harness receives it.
#[derive(Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Sending replica.
    pub from: ReplicaId,
    /// Receiving replica.
    pub to: ReplicaId,
    /// Encoded message bytes. Shared, not owned: a broadcast encodes its
    /// message once and every recipient's delivery points at the same
    /// buffer, so fan-out costs reference counts instead of `n − 1` copies
    /// (byte *accounting* still charges every recipient).
    pub payload: Arc<[u8]>,
    /// Instant the message became deliverable.
    pub deliver_at: SimTime,
    /// Arrival-order sequence number (the delivery tiebreaker).
    pub seq: u64,
}

impl fmt::Debug for Delivery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Delivery(#{} {} -> {} {}B @ {})",
            self.seq,
            self.from,
            self.to,
            self.payload.len(),
            self.deliver_at
        )
    }
}

/// Aggregate traffic counters, the quantities the message-complexity
/// experiments chart.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Total messages sent (wire cost is paid whether or not the fault
    /// schedule later drops the message).
    pub messages: u64,
    /// Total payload bytes sent.
    pub bytes: u64,
    /// Messages the fault schedule dropped (partition cuts and lossy-link
    /// losses); always zero on a lossless network.
    pub dropped: u64,
    /// Peer connections lost (reader EOF/error, writer failures). Always
    /// zero on the simulator; socket transports count every drop so
    /// reconnection logic has an observable signal instead of a silent
    /// thread exit.
    pub disconnects: u64,
}

/// A deterministic store-and-forward network with a uniform one-way delay.
#[derive(Clone, Debug)]
pub struct SimNetwork {
    delay: SimDuration,
    now: SimTime,
    /// Pending envelopes ordered by `(deliver_at, seq)`. Sends enqueue at
    /// `now + delay` and `now` never decreases, so pushing to the back and
    /// popping from the front maintains the order with no re-sorting.
    queue: VecDeque<Delivery>,
    next_seq: u64,
    stats: NetworkStats,
    faults: Option<FaultState>,
}

impl SimNetwork {
    /// Creates a lossless network with one-way delay δ.
    pub fn new(delay: SimDuration) -> Self {
        Self {
            delay,
            now: SimTime::ZERO,
            queue: VecDeque::new(),
            next_seq: 0,
            stats: NetworkStats::default(),
            faults: None,
        }
    }

    /// Applies a partial-synchrony fault schedule to this network.
    pub fn with_faults(mut self, schedule: FaultSchedule) -> Self {
        self.faults = Some(FaultState::new(schedule));
        self
    }

    /// The configured one-way delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// The network's current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queues `payload` from `from` to `to`, due one delay from now.
    /// Accepts owned bytes or an already-shared buffer. Under a
    /// [`FaultSchedule`] the message may be dropped at send time (the wire
    /// cost is still accounted; `stats.dropped` counts the loss).
    pub fn send(&mut self, from: ReplicaId, to: ReplicaId, payload: impl Into<Arc<[u8]>>) {
        let payload = payload.into();
        self.stats.messages += 1;
        self.stats.bytes += payload.len() as u64;
        let now = self.now;
        if self.faults.as_mut().is_some_and(|f| f.drops(from, to, now)) {
            self.stats.dropped += 1;
            return;
        }
        let envelope = Delivery {
            from,
            to,
            payload,
            deliver_at: self.now + self.delay,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.queue.push_back(envelope);
    }

    /// Sends `payload` from `from` to every replica in `0..n` except the
    /// sender (a replica hands its own messages to itself directly, without
    /// paying the network delay). The buffer is encoded/owned once and
    /// shared across recipients; per-recipient byte accounting is
    /// unchanged.
    pub fn broadcast(&mut self, from: ReplicaId, n: usize, payload: impl Into<Arc<[u8]>>) {
        let payload: Arc<[u8]> = payload.into();
        for to in 0..n as u16 {
            let to = ReplicaId::new(to);
            if to != from {
                self.send(from, to, Arc::clone(&payload));
            }
        }
    }

    /// Advances virtual time to `until` and returns every envelope due by
    /// then, in deterministic `(deliver_at, seq)` order.
    ///
    /// # Panics
    ///
    /// Panics if `until` is before the current time (time is monotonic).
    pub fn deliver_due(&mut self, until: SimTime) -> Vec<Delivery> {
        assert!(
            until >= self.now,
            "time moved backwards: {until} < {}",
            self.now
        );
        self.now = until;
        let mut due = Vec::new();
        while self.queue.front().is_some_and(|e| e.deliver_at <= until) {
            due.push(self.queue.pop_front().expect("checked front"));
        }
        due
    }

    /// Number of messages still in flight.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The earliest instant an in-flight message becomes deliverable, or
    /// `None` if the queue is empty — the quantity an event-driven driver
    /// (as opposed to the lock-step epoch loop) schedules against.
    pub fn next_deliver_at(&self) -> Option<SimTime> {
        self.queue.front().map(|e| e.deliver_at)
    }

    /// Traffic counters since construction.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }
}

/// The deterministic simulator as a [`Transport`]: a [`SimNetwork`] plus
/// the replica count broadcasts fan out to. Polling *advances virtual
/// time* — the network's clock is the run's clock — so a generic engine
/// loop driving this transport reproduces the old lock-step/event-loop
/// drivers byte for byte.
#[derive(Clone, Debug)]
pub struct SimTransport {
    net: SimNetwork,
    n: usize,
}

impl SimTransport {
    /// Wraps `net` as the transport of an `n`-replica system.
    pub fn new(net: SimNetwork, n: usize) -> Self {
        Self { net, n }
    }

    /// The underlying deterministic network.
    pub fn network(&self) -> &SimNetwork {
        &self.net
    }
}

impl Transport for SimTransport {
    fn replica_count(&self) -> usize {
        self.n
    }

    fn send(&mut self, from: ReplicaId, to: ReplicaId, payload: Arc<[u8]>) {
        self.net.send(from, to, payload);
    }

    fn broadcast(&mut self, from: ReplicaId, payload: Arc<[u8]>) {
        self.net.broadcast(from, self.n, payload);
    }

    fn poll_deliver(&mut self, deadline: SimTime) -> Vec<Delivery> {
        self.net.deliver_due(deadline)
    }

    fn now(&self) -> SimTime {
        self.net.now()
    }

    fn next_deliver_at(&self) -> Option<SimTime> {
        self.net.next_deliver_at()
    }

    fn is_idle(&self) -> bool {
        self.net.pending() == 0
    }

    fn stats(&self) -> NetworkStats {
        self.net.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: u16) -> ReplicaId {
        ReplicaId::new(v)
    }

    #[test]
    fn delivery_respects_delay() {
        let mut net = SimNetwork::new(SimDuration::from_millis(100));
        net.send(r(0), r(1), vec![9]);
        assert_eq!(net.pending(), 1);
        assert!(net.deliver_due(SimTime::from_millis(50)).is_empty());
        let due = net.deliver_due(SimTime::from_millis(100));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].from, r(0));
        assert_eq!(due[0].to, r(1));
        assert_eq!(net.pending(), 0);
    }

    #[test]
    fn later_sends_deliver_later() {
        let mut net = SimNetwork::new(SimDuration::from_millis(100));
        net.send(r(0), r(1), vec![1]);
        net.deliver_due(SimTime::from_millis(30));
        net.send(r(0), r(1), vec![2]); // due at 130
        let due = net.deliver_due(SimTime::from_millis(100));
        assert_eq!(due.len(), 1);
        assert_eq!(&due[0].payload[..], &[1][..]);
        let due = net.deliver_due(SimTime::from_millis(130));
        assert_eq!(&due[0].payload[..], &[2][..]);
    }

    #[test]
    fn simultaneous_messages_keep_send_order() {
        let mut net = SimNetwork::new(SimDuration::from_millis(10));
        for i in 0..5u8 {
            net.send(r(i as u16), r(9), vec![i]);
        }
        let due = net.deliver_due(SimTime::from_millis(10));
        let order: Vec<u8> = due.iter().map(|e| e.payload[0]).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn broadcast_skips_sender_and_counts_bytes() {
        let mut net = SimNetwork::new(SimDuration::from_millis(1));
        net.broadcast(r(2), 4, &[0xaa, 0xbb][..]);
        let due = net.deliver_due(SimTime::from_millis(1));
        let recipients: Vec<u16> = due.iter().map(|e| e.to.as_u16()).collect();
        assert_eq!(recipients, vec![0, 1, 3]);
        assert_eq!(
            net.stats(),
            NetworkStats {
                messages: 3,
                bytes: 6,
                dropped: 0,
                disconnects: 0
            }
        );
    }

    #[test]
    fn broadcast_shares_one_buffer_across_recipients() {
        let mut net = SimNetwork::new(SimDuration::from_millis(1));
        net.broadcast(r(0), 4, vec![1, 2, 3]);
        let due = net.deliver_due(SimTime::from_millis(1));
        assert_eq!(due.len(), 3);
        assert!(
            due.windows(2)
                .all(|w| Arc::ptr_eq(&w[0].payload, &w[1].payload)),
            "recipients alias the same encoded buffer"
        );
    }

    #[test]
    #[should_panic(expected = "time moved backwards")]
    fn time_is_monotonic() {
        let mut net = SimNetwork::new(SimDuration::from_millis(1));
        net.deliver_due(SimTime::from_millis(5));
        net.deliver_due(SimTime::from_millis(4));
    }

    #[test]
    fn next_deliver_at_tracks_the_queue_head() {
        let mut net = SimNetwork::new(SimDuration::from_millis(100));
        assert_eq!(net.next_deliver_at(), None);
        net.send(r(0), r(1), vec![1]);
        assert_eq!(net.next_deliver_at(), Some(SimTime::from_millis(100)));
        net.deliver_due(SimTime::from_millis(100));
        assert_eq!(net.next_deliver_at(), None);
    }

    #[test]
    fn zero_delay_delivers_immediately() {
        let mut net = SimNetwork::new(SimDuration::ZERO);
        net.send(r(0), r(1), vec![1]);
        assert_eq!(net.deliver_due(net.now()).len(), 1);
    }

    #[test]
    fn partition_drops_cross_cut_messages_until_heal() {
        let heal = SimTime::from_millis(500);
        let mut net = SimNetwork::new(SimDuration::from_millis(100))
            .with_faults(FaultSchedule::partition(vec![r(3)], heal));
        // Before heal: cross-cut messages vanish, same-side ones flow.
        net.send(r(0), r(3), vec![1]);
        net.send(r(3), r(0), vec![2]);
        net.send(r(0), r(1), vec![3]);
        let due = net.deliver_due(SimTime::from_millis(100));
        assert_eq!(due.len(), 1);
        assert_eq!(&due[0].payload[..], &[3][..]);
        assert_eq!(net.stats().dropped, 2);
        assert_eq!(net.stats().messages, 3, "wire cost still accounted");
        // At/after heal: the cut is gone.
        net.deliver_due(heal);
        net.send(r(0), r(3), vec![4]);
        assert_eq!(net.deliver_due(SimTime::from_millis(600)).len(), 1);
        assert_eq!(net.stats().dropped, 2);
    }

    #[test]
    fn lossy_schedule_drops_some_messages_before_gst_and_none_after() {
        let gst = SimTime::from_millis(1000);
        let mut net = SimNetwork::new(SimDuration::from_millis(1))
            .with_faults(FaultSchedule::lossy(42, 0.5, gst));
        for i in 0..100u16 {
            net.send(r(0), r(1), vec![i as u8]);
        }
        let dropped_before = net.stats().dropped;
        assert!(
            (20..=80).contains(&dropped_before),
            "~half of 100 sends drop at p=0.5, got {dropped_before}"
        );
        net.deliver_due(gst);
        for i in 0..100u16 {
            net.send(r(0), r(1), vec![i as u8]);
        }
        assert_eq!(net.stats().dropped, dropped_before, "no loss after GST");
    }

    #[test]
    fn partition_healing_exactly_at_gst_restores_both_layers_at_once() {
        // Heal time and GST at the same instant: a message sent one tick
        // before is exposed to both the cut and the loss stream; a message
        // sent exactly at the boundary is exposed to neither.
        let boundary = SimTime::from_millis(300);
        let mut net = SimNetwork::new(SimDuration::from_millis(1)).with_faults(
            FaultSchedule::lossy(1, 1.0, boundary).with_partition(vec![r(3)], boundary),
        );
        net.deliver_due(SimTime::from_millis(299));
        net.send(r(0), r(3), vec![1]); // severed AND unlucky: one drop
        assert_eq!(net.stats().dropped, 1);
        net.deliver_due(boundary);
        net.send(r(0), r(3), vec![2]); // at the boundary: delivered
        net.send(r(3), r(0), vec![3]);
        assert_eq!(net.stats().dropped, 1, "no loss at or after the boundary");
        assert_eq!(net.pending(), 2);
    }

    #[test]
    fn partition_heal_time_equal_to_now_does_not_sever() {
        // `severs` is strict (`now < heal_at`): a partition whose heal time
        // has just arrived drops nothing, even though it is still present
        // in the schedule.
        let heal = SimTime::from_millis(100);
        let mut net = SimNetwork::new(SimDuration::from_millis(1))
            .with_faults(FaultSchedule::partition(vec![r(1)], heal));
        net.deliver_due(heal);
        net.send(r(0), r(1), vec![9]);
        assert_eq!(net.stats().dropped, 0);
        assert_eq!(net.pending(), 1);
    }

    #[test]
    fn broadcast_fanout_counts_every_dropped_recipient() {
        // A broadcast is n − 1 sends, and the drop accounting charges each
        // severed recipient individually — the same per-recipient
        // accounting the TCP transport (which never drops) reports as
        // zero, so `dropped` means the same thing on both transports.
        let heal = SimTime::from_millis(500);
        let mut net = SimNetwork::new(SimDuration::from_millis(1))
            .with_faults(FaultSchedule::partition(vec![r(0)], heal));
        net.broadcast(r(0), 5, vec![7; 3]);
        assert_eq!(net.stats().messages, 4, "wire cost for all n - 1 sends");
        assert_eq!(net.stats().dropped, 4, "every cross-cut recipient counted");
        net.broadcast(r(1), 5, vec![7; 3]);
        assert_eq!(
            net.stats().dropped,
            5,
            "only the severed recipient of the second broadcast drops"
        );
        assert_eq!(net.pending(), 3);
    }

    #[test]
    fn fault_schedules_are_deterministic() {
        let run = || {
            let mut net = SimNetwork::new(SimDuration::from_millis(1))
                .with_faults(FaultSchedule::lossy(7, 0.3, SimTime::from_millis(10_000)));
            for i in 0..200u16 {
                net.send(r(i % 4), r((i + 1) % 4), vec![i as u8]);
            }
            net.stats()
        };
        assert_eq!(run(), run());
    }
}
