//! Scale stress for the loopback TCP mesh: the event-driven thread model
//! must hold its O(n) thread budget and lose nothing under an
//! all-to-all broadcast storm at n = 31 (f = 10, the first of the
//! paper's large sweep sizes).

use std::sync::Arc;

use sft_network::{ProtocolTag, TcpCluster, Transport};
use sft_types::{ReplicaId, SimDuration};

/// Threads currently alive in this process (Linux; test-only).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

#[test]
fn n31_broadcast_storm_loses_nothing_on_an_o_n_thread_budget() {
    const N: usize = 31;
    const ROUNDS: usize = 8;

    #[cfg(target_os = "linux")]
    let before = thread_count();

    let mut cluster = TcpCluster::loopback(N, ProtocolTag::Streamlet).unwrap();

    // The whole point of the rewrite: n reader threads + 1 writer, not
    // n(n − 1) writers + n(n − 1) readers (~1.9k threads at n = 31).
    #[cfg(target_os = "linux")]
    {
        let spawned = thread_count().saturating_sub(before);
        assert!(
            spawned <= N + 2,
            "mesh construction spawned {spawned} threads; budget is n + 2"
        );
    }

    // Every replica broadcasts every round: n × rounds × (n − 1)
    // deliveries in flight through one writer thread and n readers.
    let mut expected = 0usize;
    for round in 0..ROUNDS {
        for from in 0..N as u16 {
            let payload: Arc<[u8]> = vec![round as u8, from as u8, 0xee].into();
            cluster.broadcast(ReplicaId::new(from), payload);
            expected += N - 1;
        }
    }

    let mut got = 0usize;
    let deadline = cluster.now() + SimDuration::from_secs(30);
    while got < expected && cluster.now() < deadline {
        got += cluster
            .poll_deliver(cluster.now() + SimDuration::from_millis(100))
            .len();
    }
    assert_eq!(got, expected, "every frame of the storm arrives");

    let stats = cluster.stats();
    assert_eq!(stats.messages as usize, expected);
    assert_eq!(stats.dropped, 0, "backpressure, not loss");
    assert_eq!(stats.disconnects, 0, "no connection died under load");
    assert!(cluster.is_idle());
}
