//! Scale stress for the loopback TCP mesh: the event-driven thread model
//! must hold its O(n) thread budget and lose nothing under an
//! all-to-all broadcast storm at n = 31 (f = 10, the first of the
//! paper's large sweep sizes).

use std::sync::Arc;

use sft_network::{ProtocolTag, TcpCluster, Transport};
use sft_types::{ReplicaId, SimDuration};

/// Threads currently alive in this process (Linux; test-only).
#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    std::fs::read_dir("/proc/self/task").unwrap().count()
}

#[test]
fn n31_broadcast_storm_loses_nothing_on_an_o_n_thread_budget() {
    const N: usize = 31;
    const ROUNDS: usize = 8;

    #[cfg(target_os = "linux")]
    let before = thread_count();

    let mut cluster = TcpCluster::loopback(N, ProtocolTag::Streamlet).unwrap();

    // The whole point of the rewrite: n reader threads + 1 writer, not
    // n(n − 1) writers + n(n − 1) readers (~1.9k threads at n = 31).
    #[cfg(target_os = "linux")]
    {
        let spawned = thread_count().saturating_sub(before);
        assert!(
            spawned <= N + 2,
            "mesh construction spawned {spawned} threads; budget is n + 2"
        );
    }

    // Every replica broadcasts every round: n × rounds × (n − 1)
    // deliveries in flight through one writer thread and n readers.
    let mut expected = 0usize;
    for round in 0..ROUNDS {
        for from in 0..N as u16 {
            let payload: Arc<[u8]> = vec![round as u8, from as u8, 0xee].into();
            cluster.broadcast(ReplicaId::new(from), payload);
            expected += N - 1;
        }
    }

    let mut got = 0usize;
    let deadline = cluster.now() + SimDuration::from_secs(30);
    while got < expected && cluster.now() < deadline {
        got += cluster
            .poll_deliver(cluster.now() + SimDuration::from_millis(100))
            .len();
    }
    assert_eq!(got, expected, "every frame of the storm arrives");

    let stats = cluster.stats();
    assert_eq!(stats.messages as usize, expected);
    assert_eq!(stats.dropped, 0, "backpressure, not loss");
    assert_eq!(stats.disconnects, 0, "no connection died under load");
    assert!(cluster.is_idle());
}

/// The full pipelined runtime at n = 31 — mesh, one group-commit WAL
/// writer per replica, and the shared signature-verification pool — still
/// holds an O(n) thread budget: (n readers + 1 writer) for the mesh, n
/// WAL writers, and a fixed pool of [`sft_crypto::pool_workers`] crypto
/// workers. Nothing in the pipeline spawns per-message or per-connection
/// threads.
#[test]
#[cfg(target_os = "linux")]
fn n31_pipelined_runtime_stays_within_the_extended_thread_budget() {
    use sft_core::{DurableWal, GroupCommitWal, MemSink};
    use sft_crypto::{BatchItem, KeyRegistry, Signature, PARALLEL_THRESHOLD};

    const N: usize = 31;
    let before = thread_count();

    let cluster = TcpCluster::loopback(N, ProtocolTag::Streamlet).unwrap();

    // One durability writer per replica, as the per-process node runtime
    // and the TCP harness run them.
    let mut wals: Vec<GroupCommitWal> = (0..N)
        .map(|_| GroupCommitWal::spawn(MemSink::new(), sft_obs::noop(), None).unwrap())
        .collect();

    // Force the lazily-spawned crypto pool up with a batch over the
    // parallelism threshold.
    let registry = KeyRegistry::deterministic(N);
    let message = b"stress-batch";
    let signatures: Vec<Signature> = (0..N as u64)
        .map(|signer| registry.key_pair(signer).unwrap().sign(message))
        .collect();
    let items: Vec<BatchItem> = signatures
        .iter()
        .enumerate()
        .map(|(i, sig)| BatchItem::new(i as u64, message, sig))
        .collect();
    assert!(items.len() >= PARALLEL_THRESHOLD);
    assert_eq!(registry.verify_batch_pooled(&items), Ok(()));

    let spawned = thread_count().saturating_sub(before);
    let budget = (N + 2) + N + sft_crypto::pool_workers();
    assert!(
        spawned <= budget,
        "pipelined runtime spawned {spawned} threads; budget is \
         (n + 2) mesh + n wal writers + {} crypto workers = {budget}",
        sft_crypto::pool_workers()
    );

    // The writers are healthy, not just counted: a synced append on each
    // advances its watermark.
    let hash = sft_crypto::HashValue::of(b"stress-qc");
    let record = sft_core::WalRecord::QcFormed(sft_core::QuorumCertificate::new(
        sft_types::VoteData::new(
            hash,
            sft_types::Round::new(1),
            hash,
            sft_types::Round::new(0),
        ),
        sft_types::SignerSet::from_iter_with_capacity(N, (0..1).map(sft_types::ReplicaId::new)),
    ));
    for wal in &mut wals {
        let seq = wal
            .append(&record)
            .unwrap_or_else(|e| panic!("wal append: {e}"));
        wal.barrier().unwrap_or_else(|e| panic!("wal barrier: {e}"));
        assert!(wal.watermark().covers(seq));
    }
    drop(cluster);
}
