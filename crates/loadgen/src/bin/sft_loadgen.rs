//! `sft-loadgen`: closed-loop load generation against an in-process
//! loopback TCP cluster, reporting end-to-end client latency.
//!
//! The binary hosts the cluster itself (the same replica set and run
//! loop `repro --transport tcp` uses, with live clients enabled) and
//! fans a fleet of closed-loop clients out over the replicas' client
//! gateways. Clients are assigned ack strengths round-robin from `0` up
//! to `--ack-at`, so one run exercises every grade of the paper's
//! strength-graded commit as a client-visible SLA.
//!
//! ```text
//! sft-loadgen [N EPOCHS] [options]
//!   --protocol streamlet|fbft|both   protocols to drive (default both)
//!   --clients C                      closed-loop clients (default 4)
//!   --txns T                         transactions per client (default 32)
//!   --window W                       in-flight window per client (default 8)
//!   --ack-at X                       max ack strength requested (default 1)
//!   --batch-size B                   leader batch size (default 64)
//!   --payload-bytes P                bytes per transaction (default 128)
//!   --durability MODE                in-memory | write-through | group-commit
//!                                    (default in-memory)
//!   --json-dir DIR                   write BENCH_loadgen_<protocol>.json
//! ```
//!
//! Exit is non-zero on lost acks, under-strength acks, safety-invariant
//! violations, or any client socket error — the same contract the
//! `loadgen-smoke` CI job enforces.

use std::fmt::Write as _;
use std::net::SocketAddr;
use std::time::Duration;

use sft_core::ProtocolConfig;
use sft_loadgen::{run_client, ClientConfig, LoadReport};
use sft_sim::{run_over_tcp_serving, DurabilityMode, Protocol, SimConfig, SimReport, TcpPacing};
use sft_types::ReplicaId;

struct Args {
    n: usize,
    epochs: u64,
    protocols: Vec<Protocol>,
    clients: u16,
    txns: u64,
    window: usize,
    ack_at: u64,
    batch_size: u32,
    payload_bytes: usize,
    durability: DurabilityMode,
    json_dir: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 4,
        epochs: 24,
        protocols: vec![Protocol::Streamlet, Protocol::Fbft],
        clients: 4,
        txns: 16,
        window: 8,
        ack_at: 1,
        batch_size: 64,
        payload_bytes: 128,
        durability: DurabilityMode::InMemory,
        json_dir: None,
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    let mut positional = 0;
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--protocol" => {
                args.protocols = match value("--protocol")?.as_str() {
                    "streamlet" => vec![Protocol::Streamlet],
                    "fbft" => vec![Protocol::Fbft],
                    "both" => vec![Protocol::Streamlet, Protocol::Fbft],
                    other => return Err(format!("unknown protocol {other}")),
                }
            }
            "--clients" => {
                args.clients = value("--clients")?.parse().map_err(|e| format!("{e}"))?
            }
            "--txns" => args.txns = value("--txns")?.parse().map_err(|e| format!("{e}"))?,
            "--window" => args.window = value("--window")?.parse().map_err(|e| format!("{e}"))?,
            "--ack-at" => args.ack_at = value("--ack-at")?.parse().map_err(|e| format!("{e}"))?,
            "--batch-size" => {
                args.batch_size = value("--batch-size")?.parse().map_err(|e| format!("{e}"))?
            }
            "--payload-bytes" => {
                args.payload_bytes = value("--payload-bytes")?
                    .parse()
                    .map_err(|e| format!("{e}"))?
            }
            "--durability" => {
                args.durability = match value("--durability")?.as_str() {
                    "in-memory" => DurabilityMode::InMemory,
                    "write-through" => DurabilityMode::WriteThrough,
                    "group-commit" => DurabilityMode::GroupCommit,
                    other => return Err(format!("unknown durability mode {other}")),
                }
            }
            "--json-dir" => args.json_dir = Some(value("--json-dir")?),
            other if !other.starts_with("--") && positional < 2 => {
                if positional == 0 {
                    args.n = other.parse().map_err(|e| format!("n: {e}"))?;
                } else {
                    args.epochs = other.parse().map_err(|e| format!("epochs: {e}"))?;
                }
                positional += 1;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if args.window == 0 || args.txns == 0 || args.clients == 0 {
        return Err("--clients, --txns, and --window must be positive".into());
    }
    Ok(args)
}

fn protocol_name(protocol: Protocol) -> &'static str {
    match protocol {
        Protocol::Streamlet => "streamlet",
        Protocol::Fbft => "fbft",
    }
}

fn durability_name(mode: DurabilityMode) -> &'static str {
    match mode {
        DurabilityMode::InMemory => "in-memory",
        DurabilityMode::WriteThrough => "write-through",
        DurabilityMode::GroupCommit => "group-commit",
    }
}

/// Runs one protocol's cluster with the client fleet and returns the
/// merged client view plus the cluster's own report.
fn drive(args: &Args, protocol: Protocol) -> Result<(LoadReport, SimReport), String> {
    // The run must outlive the client fleet: a submission that lands in
    // one of the last blocks can never climb to its requested strength
    // (upgrades ride successor commits), so late tails read as lost.
    // Streamlet epochs are wall-clock paced (2δ each); SFT-DiemBFT
    // rounds close on QCs and fly by over loopback, so the same wall
    // clock needs a much larger round budget.
    let epochs = match protocol {
        Protocol::Streamlet => args.epochs,
        Protocol::Fbft => args.epochs * 16,
    };
    let config = SimConfig::new(args.n, epochs)
        .with_protocol(protocol)
        .with_batch_size(args.batch_size)
        .with_durability(args.durability)
        .with_live_clients(true);
    let pacing = TcpPacing::default();
    // Clients must give up before the post-run drain ends, or their
    // unresolved tail blocks nothing but still reads as "lost".
    let deadline = Duration::from_secs(90);
    let mut handles = Vec::new();
    let report = run_over_tcp_serving(&config, pacing, |addrs: &[SocketAddr]| {
        for c in 0..args.clients {
            let replica = usize::from(c) % addrs.len();
            let cfg = ClientConfig {
                addr: addrs[replica],
                replica: ReplicaId::new(replica as u16),
                client: 100 + c,
                total: args.txns,
                window: args.window,
                payload_bytes: args.payload_bytes,
                // Round-robin over strengths: every grade up to the
                // ceiling gets a per-strength ack target.
                ack_at: u64::from(c) % (args.ack_at + 1),
                retry_busy: true,
                deadline,
            };
            handles.push(std::thread::spawn(move || run_client(&cfg)));
        }
    })
    .map_err(|e| format!("cluster: {e}"))?;
    let mut reports = Vec::new();
    for handle in handles {
        let client = handle
            .join()
            .map_err(|_| "client thread panicked".to_string())?
            .map_err(|e| format!("client: {e}"))?;
        reports.push(client);
    }
    Ok((LoadReport::merge(reports), report))
}

fn summary_json(args: &Args, protocol: Protocol, load: &LoadReport, report: &SimReport) -> String {
    let cfg = ProtocolConfig::for_replicas(args.n);
    let mut out = String::from("{\n");
    let mut field = |key: &str, value: String| {
        let _ = writeln!(out, "  \"{key}\": {value},");
    };
    field("protocol", format!("\"{}\"", protocol_name(protocol)));
    field("n", args.n.to_string());
    field("f", cfg.f().to_string());
    field("epochs", args.epochs.to_string());
    field("behavior", "\"loadgen\"".to_string());
    field("batch_size", args.batch_size.to_string());
    field("clients", args.clients.to_string());
    field("window", args.window.to_string());
    field("ack_at_max", args.ack_at.to_string());
    field(
        "durability",
        format!("\"{}\"", durability_name(args.durability)),
    );
    field("wal_fsyncs", report.wal_fsyncs.to_string());
    field("agreement", report.agreement().to_string());
    field(
        "strength_monotone",
        report.commit_strength_monotone().to_string(),
    );
    field("committed_blocks", report.max_committed().to_string());
    field("txns_committed", report.txns_committed.to_string());
    field("client_requests", load.requests_sent.to_string());
    field("acks_committed", load.committed.to_string());
    field("client_rejected", load.rejected.to_string());
    field("lost_acks", load.lost.to_string());
    field("under_strength_acks", load.under_strength.to_string());
    field("e2e_ack_p50_us", load.p50_us().to_string());
    field("e2e_ack_p99_us", load.p99_us().to_string());
    field("e2e_txns_per_sec", format!("{:.3}", load.txns_per_sec()));
    let _ = writeln!(out, "  \"elapsed_us\": {}\n}}", load.elapsed.as_micros());
    out
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("sft-loadgen: {e}");
            std::process::exit(2);
        }
    };
    let mut failed = false;
    for &protocol in &args.protocols {
        println!(
            "loadgen SFT-{}: n={}, {} epochs, {} clients x {} txns (window {}), \
             ack-at 0..={}, wal {}",
            protocol_name(protocol),
            args.n,
            args.epochs,
            args.clients,
            args.txns,
            args.window,
            args.ack_at,
            durability_name(args.durability),
        );
        let (load, report) = match drive(&args, protocol) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("sft-loadgen [{}]: {e}", protocol_name(protocol));
                failed = true;
                continue;
            }
        };
        println!(
            "  committed {} / rejected {} / lost {} acks in {:?} \
             (p50 {} us, p99 {} us, {:.1} txns/s)",
            load.committed,
            load.rejected,
            load.lost,
            load.elapsed,
            load.p50_us(),
            load.p99_us(),
            load.txns_per_sec(),
        );
        if let Some(dir) = &args.json_dir {
            let path = format!("{dir}/BENCH_loadgen_{}.json", protocol_name(protocol));
            let json = summary_json(&args, protocol, &load, &report);
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("sft-loadgen: writing {path}: {e}");
                failed = true;
            } else {
                println!("  wrote {path}");
            }
        }
        let expected = u64::from(args.clients) * args.txns;
        if load.lost > 0 {
            eprintln!("  FAIL: {} of {expected} submissions lost", load.lost);
            failed = true;
        }
        if load.under_strength > 0 {
            eprintln!(
                "  FAIL: {} acks below their requested strength",
                load.under_strength
            );
            failed = true;
        }
        if !report.agreement() || !report.commit_strength_monotone() {
            eprintln!("  FAIL: safety invariant violated");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
