//! Closed-loop client load generation for the SFT client plane.
//!
//! A load-generating client dials one replica's client gateway (the
//! [`sft_types::ProtocolTag::Client`] door every transport exposes),
//! keeps a fixed window of submissions in flight, and matches each
//! [`sft_types::ClientAck`] back to its submission by transaction id.
//! Because the loop is *closed* — a new request only goes out when an
//! ack frees a window slot — the generator doubles as the
//! admission-control probe: when the replica's mempool cap is smaller
//! than the window, the overflow comes back as explicit `Busy` acks and
//! the client retries, exactly the backpressure contract the client API
//! promises.
//!
//! Every submission must resolve to *some* ack. Submissions still
//! unresolved when the deadline trips are counted as
//! [`LoadReport::lost`] — the gated `lost_acks` metric, which a healthy
//! cluster keeps at zero.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use sft_crypto::HashValue;
use sft_types::{
    ClientAck, ClientFrame, ClientRequest, Decode, Encode, Envelope, ProtocolTag, ReplicaId,
    Transaction,
};

/// The deterministic payload byte every generated transaction is filled
/// with (distinct from the pre-fed workload's `0xc5` so traces tell the
/// two apart).
pub const PAYLOAD_FILL: u8 = 0x1d;

/// One closed-loop client's parameters.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// The replica client-gateway address to dial.
    pub addr: SocketAddr,
    /// The replica behind `addr` — the destination every envelope names.
    pub replica: ReplicaId,
    /// This client's identity: the hello frame's claimed source and the
    /// `client` field of every generated [`Transaction`].
    pub client: u16,
    /// Distinct transactions to submit over the run.
    pub total: u64,
    /// Maximum submissions in flight at once (the closed-loop window).
    pub window: usize,
    /// Payload bytes per transaction.
    pub payload_bytes: usize,
    /// Strength level to request acks at (`ClientRequest::ack_at`).
    pub ack_at: u64,
    /// Resubmit transactions the replica answered `Busy` for (admission
    /// backpressure). When `false` a `Busy` resolves the submission.
    pub retry_busy: bool,
    /// Wall-clock budget; in-flight submissions past it count as lost.
    pub deadline: Duration,
}

impl ClientConfig {
    /// A small smoke-test configuration against `addr`/`replica`.
    pub fn smoke(addr: SocketAddr, replica: ReplicaId, client: u16) -> Self {
        Self {
            addr,
            replica,
            client,
            total: 16,
            window: 4,
            payload_bytes: 64,
            ack_at: 1,
            retry_busy: true,
            deadline: Duration::from_secs(60),
        }
    }
}

/// What one (or a merged set of) closed-loop client(s) observed.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Request frames sent, retries included.
    pub requests_sent: u64,
    /// Submissions acknowledged `Committed`.
    pub committed: u64,
    /// `Busy` + `Duplicate` acks received.
    pub rejected: u64,
    /// Submissions that never resolved to any ack before the deadline.
    pub lost: u64,
    /// Committed acks whose strength came back *below* the requested
    /// `ack_at` — always zero unless the ack pipeline is broken.
    pub under_strength: u64,
    /// End-to-end submit→committed-ack latencies, microseconds.
    pub latencies_us: Vec<u64>,
    /// Wall clock from first submission to last resolution.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Median end-to-end ack latency (µs); zero when nothing committed.
    pub fn p50_us(&self) -> u64 {
        self.percentile(50)
    }

    /// 99th-percentile end-to-end ack latency (µs).
    pub fn p99_us(&self) -> u64 {
        self.percentile(99)
    }

    /// Committed transactions per wall-clock second.
    pub fn txns_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.committed as f64 / secs
    }

    /// The nearest-rank `q`-th percentile of the latency samples.
    fn percentile(&self, q: u64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = (q as usize * sorted.len()).div_ceil(100);
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }

    /// Folds per-client reports into one fleet-wide report (latency
    /// samples concatenate; elapsed takes the slowest client).
    pub fn merge(reports: impl IntoIterator<Item = LoadReport>) -> LoadReport {
        let mut out = LoadReport::default();
        for r in reports {
            out.requests_sent += r.requests_sent;
            out.committed += r.committed;
            out.rejected += r.rejected;
            out.lost += r.lost;
            out.under_strength += r.under_strength;
            out.latencies_us.extend(r.latencies_us);
            out.elapsed = out.elapsed.max(r.elapsed);
        }
        out
    }
}

/// A submission the client is still waiting on.
struct Pending {
    seq: u64,
    sent_at: Instant,
}

/// Runs one closed-loop client to completion: dials the gateway, keeps
/// [`ClientConfig::window`] submissions in flight, and resolves every
/// one of [`ClientConfig::total`] transactions to an ack (or counts it
/// lost at the deadline).
///
/// # Errors
///
/// Returns socket errors (connect/read/write) and protocol violations
/// (an unparseable frame from the replica). A replica hanging up is not
/// an error — unresolved submissions just count as lost.
pub fn run_client(cfg: &ClientConfig) -> io::Result<LoadReport> {
    let mut sock = TcpStream::connect(cfg.addr)?;
    sock.set_nodelay(true)?;
    // Short read timeouts pace the loop: each iteration tops the window
    // up, then waits briefly for acks.
    sock.set_read_timeout(Some(Duration::from_millis(20)))?;
    let me = ReplicaId::new(cfg.client);
    // The hello binds this connection to `me`; it carries no request.
    sock.write_all(
        &Envelope::to_peer(me, cfg.replica, ProtocolTag::Client, Vec::new()).to_frame(),
    )?;

    let started = Instant::now();
    let mut report = LoadReport::default();
    let mut inflight: HashMap<HashValue, Pending> = HashMap::new();
    let mut next_seq = 0u64;
    let mut resolved = 0u64;
    let mut buf: Vec<u8> = Vec::new();
    let mut alive = true;

    let submit = |sock: &mut TcpStream, seq: u64, sent: &mut u64| -> io::Result<HashValue> {
        let txn = Transaction::new(
            u64::from(cfg.client),
            seq,
            vec![PAYLOAD_FILL; cfg.payload_bytes],
        );
        let req = ClientRequest::new(txn, cfg.ack_at);
        let id = req.txn_id();
        let payload = ClientFrame::Request(req).to_bytes();
        sock.write_all(
            &Envelope::to_peer(me, cfg.replica, ProtocolTag::Client, payload).to_frame(),
        )?;
        *sent += 1;
        Ok(id)
    };

    while resolved < cfg.total && started.elapsed() < cfg.deadline {
        while alive && inflight.len() < cfg.window && next_seq < cfg.total {
            let seq = next_seq;
            let id = submit(&mut sock, seq, &mut report.requests_sent)?;
            inflight.insert(
                id,
                Pending {
                    seq,
                    sent_at: Instant::now(),
                },
            );
            next_seq += 1;
        }
        if alive {
            let mut tmp = [0u8; 4096];
            match sock.read(&mut tmp) {
                // The cluster shut down; whatever is still in flight is lost.
                Ok(0) => alive = false,
                Ok(n) => buf.extend_from_slice(&tmp[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionReset | io::ErrorKind::BrokenPipe
                    ) =>
                {
                    alive = false
                }
                Err(e) => return Err(e),
            }
        }
        while let Some((env, used)) = Envelope::decode_frame(&buf)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e:?}")))?
        {
            buf.drain(..used);
            let Ok(ClientFrame::Ack(ack)) = ClientFrame::from_bytes(&env.payload) else {
                continue;
            };
            let Some(pending) = inflight.remove(&ack.txn_id()) else {
                continue;
            };
            match ack {
                ClientAck::Committed { strength, .. } => {
                    report.committed += 1;
                    resolved += 1;
                    if strength < cfg.ack_at {
                        report.under_strength += 1;
                    }
                    report
                        .latencies_us
                        .push(pending.sent_at.elapsed().as_micros() as u64);
                }
                ClientAck::Busy { .. } => {
                    report.rejected += 1;
                    if cfg.retry_busy && alive {
                        // Same transaction, same latency clock: the
                        // retry is part of this submission's story.
                        let id = submit(&mut sock, pending.seq, &mut report.requests_sent)?;
                        inflight.insert(id, pending);
                    } else {
                        resolved += 1;
                    }
                }
                ClientAck::Duplicate { .. } => {
                    report.rejected += 1;
                    resolved += 1;
                }
            }
        }
        if !alive {
            // The socket is closed and every complete frame already
            // buffered has been handled: nothing can resolve any more.
            break;
        }
    }
    report.lost = inflight.len() as u64 + (cfg.total - next_seq);
    report.elapsed = started.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(latencies: Vec<u64>) -> LoadReport {
        LoadReport {
            committed: latencies.len() as u64,
            latencies_us: latencies,
            elapsed: Duration::from_secs(2),
            ..LoadReport::default()
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let r = report_with((1..=100).collect());
        assert_eq!(r.p50_us(), 50);
        assert_eq!(r.p99_us(), 99);
        assert_eq!(report_with(vec![7]).p50_us(), 7);
        assert_eq!(report_with(Vec::new()).p99_us(), 0);
    }

    #[test]
    fn throughput_is_committed_over_elapsed() {
        let r = report_with(vec![10, 20, 30, 40]);
        assert!((r.txns_per_sec() - 2.0).abs() < 1e-9);
        assert_eq!(LoadReport::default().txns_per_sec(), 0.0);
    }

    #[test]
    fn merge_concatenates_samples_and_takes_slowest_clock() {
        let mut a = report_with(vec![1, 2]);
        a.lost = 1;
        let mut b = report_with(vec![3]);
        b.elapsed = Duration::from_secs(5);
        b.rejected = 2;
        let m = LoadReport::merge([a, b]);
        assert_eq!(m.committed, 3);
        assert_eq!(m.lost, 1);
        assert_eq!(m.rejected, 2);
        assert_eq!(m.latencies_us, vec![1, 2, 3]);
        assert_eq!(m.elapsed, Duration::from_secs(5));
    }
}
