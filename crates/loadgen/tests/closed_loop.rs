//! Closed-loop load generation against a real loopback cluster: the
//! zero-lost-acks acceptance run, and admission-control backpressure
//! when the client window outsizes the replica's mempool cap.

use std::net::SocketAddr;
use std::time::Duration;

use sft_loadgen::{run_client, ClientConfig, LoadReport};
use sft_sim::{run_over_tcp_serving, SimConfig, TcpPacing};
use sft_types::ReplicaId;

fn fleet(
    config: &SimConfig,
    clients: u16,
    per_client: impl Fn(u16) -> (u64, usize, u64) + Send + Sync,
) -> (LoadReport, sft_sim::SimReport) {
    let mut handles = Vec::new();
    let report = run_over_tcp_serving(config, TcpPacing::default(), |addrs: &[SocketAddr]| {
        for c in 0..clients {
            let replica = usize::from(c) % addrs.len();
            let (total, window, ack_at) = per_client(c);
            let cfg = ClientConfig {
                addr: addrs[replica],
                replica: ReplicaId::new(replica as u16),
                client: 500 + c,
                total,
                window,
                payload_bytes: 64,
                ack_at,
                retry_busy: true,
                deadline: Duration::from_secs(90),
            };
            handles.push(std::thread::spawn(move || run_client(&cfg)));
        }
    })
    .expect("loopback mesh");
    let reports: Vec<LoadReport> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread").expect("client io"))
        .collect();
    (LoadReport::merge(reports), report)
}

/// The acceptance criterion: a closed-loop run where every submission
/// resolves — zero lost acks — with sane latency percentiles.
#[test]
fn closed_loop_run_loses_no_acks() {
    let config = SimConfig::new(4, 24)
        .with_batch_size(32)
        .with_live_clients(true);
    let (load, report) = fleet(&config, 4, |c| (12, 4, u64::from(c) % 3));
    assert_eq!(load.lost, 0, "every submission came back as an ack");
    assert_eq!(load.committed, 4 * 12, "and every ack was Committed");
    assert_eq!(load.under_strength, 0);
    assert!(report.agreement());
    assert!(report.commit_strength_monotone());
    assert_eq!(load.latencies_us.len() as u64, load.committed);
    assert!(load.p50_us() > 0 && load.p50_us() <= load.p99_us());
    assert!(load.txns_per_sec() > 0.0);
}

/// Backpressure: the window (16) outsizes the mempool cap (4), so
/// admission *must* push back with explicit `Busy` acks — and because
/// the client retries, every transaction still commits once proposals
/// drain the mempool. Rejection is flow control here, not loss.
#[test]
fn window_larger_than_mempool_cap_bounces_then_recovers() {
    // The pinned replica leads every 4th epoch and each lead drains at
    // most `batch_size` = cap = 4 transactions, so 32 epochs leave ~2×
    // slack over the 16 submissions (plus commit lag).
    let config = SimConfig::new(4, 32)
        .with_batch_size(4)
        .with_live_clients(true)
        .with_mempool_txn_cap(4);
    let (load, report) = fleet(&config, 1, |_| (16, 16, 0));
    assert!(
        load.rejected > 0,
        "a 16-wide window against a 4-deep mempool must see Busy acks \
         (got {} rejections over {} requests)",
        load.rejected,
        load.requests_sent
    );
    assert!(
        load.requests_sent > 16,
        "retries happened: {} requests for 16 transactions",
        load.requests_sent
    );
    assert_eq!(load.committed, 16, "every transaction commits eventually");
    assert_eq!(load.lost, 0);
    assert!(report.agreement());
}
